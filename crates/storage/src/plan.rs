//! Logical query plans — layer 1 of the planned execution engine.
//!
//! The planner lowers a `bp-sql` [`Query`] AST into a tree of relational
//! operators ([`LogicalPlan`]): `Scan`, `Filter`, `Project`, `Join`,
//! `Aggregate`, `Sort`, `Limit` and `SetOp`. Two rewrite passes run during
//! lowering:
//!
//! * **Predicate pushdown** — the `WHERE` clause is split into conjuncts
//!   (via [`bp_sql::split_conjuncts`], shared with query decomposition) and
//!   each side-effect-free conjunct is pushed below joins to the deepest
//!   operator whose bindings cover its column references. Pushdown respects
//!   outer-join null-extension: predicates only move into the preserved
//!   side of an outer join.
//! * **Equi-join key extraction** — `ON` clauses are analyzed with
//!   [`bp_sql::equi_join_keys`]; `left.col = right.col` conjuncts become
//!   key pairs (resolved to column ordinals) that layer 2 turns into hash
//!   joins, with the remaining conjuncts kept as a residual predicate.
//!
//! `ORDER BY` keys are planned structurally: keys that name an output
//! ordinal or alias become ordinals into the projected row; all other key
//! expressions are appended to the projection as *hidden* columns, the
//! [`LogicalPlan::Sort`] node sorts by ordinal only, and the executor strips
//! hidden columns when materializing the final [`QueryResult`](crate::QueryResult).
//! (Hidden keys are computed before `DISTINCT` prunes duplicates — the
//! values are identical either way; only a sort key that *errors* on a row
//! `DISTINCT` would have pruned could tell the difference.)
//!
//! Layer 2 — the physical operators that execute these plans — lives in
//! [`crate::physical`]. The legacy tree-walking interpreter
//! ([`crate::exec`]) is retained as the differential-testing oracle; both
//! engines share this module's binding-resolution rules so they agree on
//! name lookup exactly.

use std::collections::HashMap;
use std::fmt;

use bp_sql::{
    collect_column_refs, equi_join_keys, split_conjuncts, BinaryOperator, Expr, JoinConstraint,
    JoinOperator, Literal, OrderByExpr, Query, Select, SelectItem, SetExpr, SetOperator,
    TableFactor, UnaryOperator,
};

use crate::error::{StorageError, StorageResult};
use crate::scalar::{eq_upper, upper_eq};
use crate::snapshot::Snapshot;

// ---------------------------------------------------------------------
// Bindings
// ---------------------------------------------------------------------

/// A column binding of a relation flowing through either engine: the
/// optional qualifier (table alias) and the column name, both normalized to
/// their canonical (uppercase) form at relation construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBinding {
    /// Normalized qualifier (table alias), if any.
    pub qualifier: Option<String>,
    /// Normalized column name.
    pub name: String,
}

/// Resolve raw identifier text against bindings with the executor's rules:
/// the comparison behaves as `binding == raw.to_ascii_uppercase()` (without
/// allocating) and the first match wins.
pub(crate) fn resolve_binding(
    bindings: &[ColumnBinding],
    qualifier: Option<&str>,
    name: &str,
) -> Option<usize> {
    bindings.iter().position(|b| {
        eq_upper(&b.name, name)
            && match qualifier {
                Some(q) => b.qualifier.as_deref().is_some_and(|bq| eq_upper(bq, q)),
                None => true,
            }
    })
}

// ---------------------------------------------------------------------
// Projection expansion (shared with the legacy interpreter)
// ---------------------------------------------------------------------

/// Expand `*` and `alias.*` into concrete (expression, output-name) pairs.
pub(crate) fn expand_projection(
    projection: &[SelectItem],
    bindings: &[ColumnBinding],
) -> Vec<(Expr, String)> {
    let mut items = Vec::new();
    for item in projection {
        match item {
            SelectItem::Wildcard => {
                for b in bindings {
                    items.push((binding_expr(b), b.name.clone()));
                }
            }
            SelectItem::QualifiedWildcard(name) => {
                let qual = name.base().normalized();
                for b in bindings
                    .iter()
                    .filter(|b| b.qualifier.as_deref() == Some(qual.as_str()))
                {
                    items.push((binding_expr(b), b.name.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.value.clone(),
                    None => output_name(expr),
                };
                items.push((expr.clone(), name));
            }
        }
    }
    items
}

pub(crate) fn binding_expr(binding: &ColumnBinding) -> Expr {
    match &binding.qualifier {
        Some(q) => Expr::qcol(q.clone(), binding.name.clone()),
        None => Expr::col(binding.name.clone()),
    }
}

pub(crate) fn output_name(expr: &Expr) -> String {
    match expr {
        Expr::Identifier(i) => i.value.clone(),
        Expr::CompoundIdentifier(parts) => parts
            .last()
            .map(|p| p.value.clone())
            .unwrap_or_else(|| expr.to_string()),
        Expr::Function { name, .. } => name.value.to_ascii_uppercase(),
        _ => expr.to_string(),
    }
}

/// Whether an expression contains an aggregate function call outside of any
/// subquery. Decides between [`LogicalPlan::Project`] and
/// [`LogicalPlan::Aggregate`], with exactly the legacy interpreter's rules.
pub(crate) fn contains_aggregate(expr: &Expr) -> bool {
    if expr.is_aggregate_call() {
        return true;
    }
    match expr {
        Expr::BinaryOp { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::UnaryOp { expr, .. } => contains_aggregate(expr),
        Expr::Function { args, .. } => args.iter().any(contains_aggregate),
        Expr::Case {
            operand,
            conditions,
            else_result,
        } => {
            operand.as_deref().is_some_and(contains_aggregate)
                || conditions
                    .iter()
                    .any(|(c, r)| contains_aggregate(c) || contains_aggregate(r))
                || else_result.as_deref().is_some_and(contains_aggregate)
        }
        Expr::Cast { expr, .. } | Expr::Nested(expr) | Expr::IsNull { expr, .. } => {
            contains_aggregate(expr)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Plan nodes
// ---------------------------------------------------------------------

/// The data source of a [`LogicalPlan::Scan`].
#[derive(Debug, Clone)]
pub enum ScanSource {
    /// Base table scan (normalized table name).
    Table(String),
    /// Reference to a materialized CTE. `depth` is the planner frame the
    /// name resolved in, used by layer 2 to decide subquery-result caching.
    Cte {
        /// Normalized CTE name.
        name: String,
        /// Planner frame depth where the CTE is defined.
        depth: usize,
    },
    /// Derived table `(SELECT ...) alias`, planned as a nested query.
    Derived(Box<QueryPlan>),
    /// FROM-less `SELECT`: a single empty row.
    Empty,
}

/// A leaf scan together with the bindings it produces.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Where the rows come from.
    pub source: ScanSource,
    /// The output bindings (qualifier = table alias, names normalized).
    pub bindings: Vec<ColumnBinding>,
}

/// One `ORDER BY` key, fully resolved to a column ordinal of the row
/// flowing into the sort (visible or hidden). `ordinal: None` is a constant
/// NULL key (legal in set-operation ordering), which leaves row order
/// untouched under the engine's stable sort.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Ordinal into the input row, or `None` for a constant NULL key.
    pub ordinal: Option<usize>,
    /// Ascending?
    pub asc: bool,
}

/// A logical relational operator.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Leaf: produce rows from a table / CTE / derived query.
    Scan(Scan),
    /// Keep rows satisfying the predicate.
    Filter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Row predicate.
        predicate: Expr,
    },
    /// Join two inputs. When `equi_keys` is non-empty layer 2 uses a hash
    /// join on those key ordinals; the `residual` predicate (the non-key
    /// conjuncts of the `ON` clause) is checked on each key-matched pair.
    /// With no keys and no residual the join is a cross product.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join type.
        operator: JoinOperator,
        /// Equi-join key pairs: (left ordinal, right-relative ordinal).
        equi_keys: Vec<(usize, usize)>,
        /// Non-key `ON` conjuncts, AND-joined.
        residual: Option<Expr>,
        /// Combined output bindings (left then right).
        bindings: Vec<ColumnBinding>,
    },
    /// Evaluate projection expressions per input row. The first
    /// `names.len()` items are the visible output columns; any further
    /// items are hidden sort keys.
    Project {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Projected expressions (visible then hidden).
        items: Vec<Expr>,
        /// Output column names (one per visible item).
        names: Vec<String>,
        /// Apply DISTINCT over the visible columns.
        distinct: bool,
    },
    /// Hash aggregation: group input rows by `group_by`, filter groups with
    /// `having`, then evaluate the projection per group. Item/`names`
    /// layout is as in [`LogicalPlan::Project`].
    Aggregate {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Grouping expressions (empty = one global group).
        group_by: Vec<Expr>,
        /// Group filter.
        having: Option<Expr>,
        /// Projected expressions (visible then hidden).
        items: Vec<Expr>,
        /// Output column names (one per visible item).
        names: Vec<String>,
        /// Apply DISTINCT over the visible columns.
        distinct: bool,
    },
    /// Stable sort by pre-resolved key ordinals.
    Sort {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Sort keys in priority order.
        keys: Vec<SortKey>,
    },
    /// LIMIT / OFFSET (expressions evaluated once, in an empty row scope).
    Limit {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Row cap.
        limit: Option<Expr>,
        /// Rows to skip.
        offset: Option<Expr>,
    },
    /// UNION / INTERSECT / EXCEPT over two nested plans.
    SetOp {
        /// The operator.
        op: SetOperator,
        /// `ALL` variant?
        all: bool,
        /// Left operand plan.
        left: Box<QueryPlan>,
        /// Right operand plan.
        right: Box<QueryPlan>,
    },
    /// A nested query executed as its own plan (parenthesized set-operation
    /// operand).
    Nested(Box<QueryPlan>),
}

impl LogicalPlan {
    /// The bindings this operator's output rows can resolve names against.
    /// Projection-producing operators return an empty slice: name resolution
    /// never crosses them (sorting above them is ordinal-based).
    pub fn bindings(&self) -> &[ColumnBinding] {
        match self {
            LogicalPlan::Scan(scan) => &scan.bindings,
            LogicalPlan::Filter { input, .. } => input.bindings(),
            LogicalPlan::Join { bindings, .. } => bindings,
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => input.bindings(),
            LogicalPlan::Project { .. }
            | LogicalPlan::Aggregate { .. }
            | LogicalPlan::SetOp { .. }
            | LogicalPlan::Nested(_) => &[],
        }
    }
}

/// A fully planned query: CTEs (materialized in order at execution time),
/// the operator tree, and the visible output shape.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// CTE plans in declaration order (normalized name, plan).
    pub ctes: Vec<(String, QueryPlan)>,
    /// The operator tree.
    pub root: LogicalPlan,
    /// Visible output column names.
    pub columns: Vec<String>,
    /// Whether the result is ordered (outermost ORDER BY present).
    pub ordered: bool,
}

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

/// Plans `bp-sql` queries against a storage snapshot's catalog.
pub struct Planner<'a> {
    db: &'a Snapshot,
    /// CTE name frames visible at the current planning point (outermost
    /// first), mapping normalized CTE name → output column names.
    frames: Vec<HashMap<String, Vec<String>>>,
    /// Estimated row counts of planned CTEs, parallel to `frames`, feeding
    /// the cost model's `ScanSource::Cte` cardinalities.
    cte_rows: Vec<HashMap<String, f64>>,
    /// Whether statistics-driven join reordering runs (`true` by default;
    /// disabled for the syntactic baseline in benchmarks and differential
    /// tests).
    cost_based: bool,
    /// How the optimizer treated this planner's join spines.
    optimizer: crate::cost::OptimizerStats,
}

impl<'a> Planner<'a> {
    /// Create a planner over a snapshot.
    pub fn new(db: &'a Snapshot) -> Self {
        Planner {
            db,
            frames: Vec::new(),
            cte_rows: Vec::new(),
            cost_based: true,
            optimizer: crate::cost::OptimizerStats::default(),
        }
    }

    /// Create a planner that starts inside existing CTE scopes. Used by
    /// layer 2 to plan subqueries found in expressions, so their CTE
    /// references resolve against the scopes of their enclosing query.
    /// (No cardinality context rides along: outer CTE estimates default.)
    pub(crate) fn with_frames(db: &'a Snapshot, frames: Vec<HashMap<String, Vec<String>>>) -> Self {
        let cte_rows = vec![HashMap::new(); frames.len()];
        Planner {
            db,
            frames,
            cte_rows,
            cost_based: true,
            optimizer: crate::cost::OptimizerStats::default(),
        }
    }

    /// Enable or disable statistics-driven join reordering. Disabling it
    /// is the *syntactic baseline*: joins compile in the order the query
    /// spells them, exactly as before the cost model existed.
    pub fn with_cost_based(mut self, enabled: bool) -> Self {
        self.cost_based = enabled;
        self
    }

    /// The optimizer counters accumulated over everything this planner has
    /// planned so far.
    pub fn optimizer_stats(&self) -> crate::cost::OptimizerStats {
        self.optimizer
    }

    /// Plan a query into a logical plan.
    pub fn plan(&mut self, query: &Query) -> StorageResult<QueryPlan> {
        self.frames.push(HashMap::new());
        self.cte_rows.push(HashMap::new());
        let result = self.plan_query_inner(query);
        self.frames.pop();
        self.cte_rows.pop();
        result
    }

    fn plan_query_inner(&mut self, query: &Query) -> StorageResult<QueryPlan> {
        let mut ctes = Vec::new();
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                let sub = self.plan(&cte.query)?;
                let name = cte.name.normalized();
                self.frames
                    .last_mut()
                    .expect("frame pushed by plan()")
                    .insert(name.clone(), sub.columns.clone());
                let rows =
                    crate::cost::Estimator::with_cte_rows(self.db, &self.cte_rows).query_rows(&sub);
                if let Some(frame) = self.cte_rows.last_mut() {
                    frame.insert(name.clone(), rows);
                }
                ctes.push((name, sub));
            }
        }
        match &query.body {
            SetExpr::Select(select) => {
                let (root, columns) = self.plan_select(
                    select,
                    &query.order_by,
                    query.limit.as_ref(),
                    query.offset.as_ref(),
                )?;
                Ok(QueryPlan {
                    ctes,
                    root,
                    columns,
                    ordered: !query.order_by.is_empty(),
                })
            }
            body => {
                let operand = self.plan_set_operand(body)?;
                let columns = operand.columns.clone();
                // A bare parenthesized query keeps its own ordering when the
                // outer query adds none; a set operation result is unordered.
                let inner_ordered = matches!(body, SetExpr::Query(_)) && operand.ordered;
                let mut root = LogicalPlan::Nested(Box::new(operand));
                if !query.order_by.is_empty() {
                    let keys = query
                        .order_by
                        .iter()
                        .map(|item| SortKey {
                            ordinal: set_op_order_ordinal(&item.expr, &columns),
                            asc: item.asc,
                        })
                        .collect();
                    root = LogicalPlan::Sort {
                        input: Box::new(root),
                        keys,
                    };
                }
                if query.limit.is_some() || query.offset.is_some() {
                    root = LogicalPlan::Limit {
                        input: Box::new(root),
                        limit: query.limit.clone(),
                        offset: query.offset.clone(),
                    };
                }
                Ok(QueryPlan {
                    ctes,
                    root,
                    columns,
                    ordered: !query.order_by.is_empty() || inner_ordered,
                })
            }
        }
    }

    fn plan_set_operand(&mut self, body: &SetExpr) -> StorageResult<QueryPlan> {
        match body {
            SetExpr::Select(select) => {
                let (root, columns) = self.plan_select(select, &[], None, None)?;
                Ok(QueryPlan {
                    ctes: Vec::new(),
                    root,
                    columns,
                    ordered: false,
                })
            }
            SetExpr::Query(query) => self.plan(query),
            SetExpr::SetOperation {
                op,
                all,
                left,
                right,
            } => {
                let l = self.plan_set_operand(left)?;
                let r = self.plan_set_operand(right)?;
                let columns = l.columns.clone();
                Ok(QueryPlan {
                    ctes: Vec::new(),
                    root: LogicalPlan::SetOp {
                        op: *op,
                        all: *all,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    columns,
                    ordered: false,
                })
            }
        }
    }

    // -----------------------------------------------------------------
    // SELECT lowering
    // -----------------------------------------------------------------

    fn plan_select(
        &mut self,
        select: &Select,
        order_by: &[OrderByExpr],
        limit: Option<&Expr>,
        offset: Option<&Expr>,
    ) -> StorageResult<(LogicalPlan, Vec<String>)> {
        // FROM: joins left-to-right, comma-separated factors cross-joined.
        let mut from_plan: Option<LogicalPlan> = None;
        for twj in &select.from {
            let mut relation = self.plan_table_factor(&twj.relation)?;
            for join in &twj.joins {
                let right = self.plan_table_factor(&join.relation)?;
                relation = self.plan_join(relation, right, join.operator, &join.constraint)?;
            }
            from_plan = Some(match from_plan {
                None => relation,
                Some(left) => {
                    self.plan_join(left, relation, JoinOperator::Cross, &JoinConstraint::None)?
                }
            });
        }
        let mut plan = from_plan.unwrap_or(LogicalPlan::Scan(Scan {
            source: ScanSource::Empty,
            bindings: Vec::new(),
        }));
        let bindings = plan.bindings().to_vec();

        // WHERE with predicate pushdown. Pushdown evaluates predicates on
        // (and eliminates) rows *earlier* than the oracle does, which is
        // unobservable only while no part of the WHERE clause can raise a
        // row-dependent error: an erroring conjunct left in the residual
        // would otherwise be silently skipped on rows a pushed conjunct
        // filtered out. So the clause is pushed only when every conjunct is
        // error-free; otherwise it stays above the join untouched.
        if let Some(selection) = &select.selection {
            let conjuncts = split_conjuncts(selection);
            if conjuncts.iter().all(|c| benign(c, &bindings)) {
                let mut residual: Vec<Expr> = Vec::new();
                for conjunct in conjuncts {
                    match pushable_conjunct(conjunct, &bindings) {
                        Some(ordinals) => {
                            if let Err(unpushed) = try_push(&mut plan, conjunct.clone(), &ordinals)
                            {
                                residual.push(unpushed);
                            }
                        }
                        None => residual.push(conjunct.clone()),
                    }
                }
                if let Some(predicate) = and_join(residual) {
                    plan = LogicalPlan::Filter {
                        input: Box::new(plan),
                        predicate,
                    };
                }
            } else {
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: selection.clone(),
                };
            }
        }

        // Statistics-driven join reordering over the FROM spine (see
        // [`crate::cost`]). Association-only, so output bytes are
        // structurally unchanged; runs after pushdown so pushed filters
        // ride along inside their leaves and feed the leaf estimates.
        {
            let est = crate::cost::Estimator::with_cte_rows(self.db, &self.cte_rows);
            plan = crate::cost::reorder(&est, plan, self.cost_based, &mut self.optimizer);
        }

        // Projection and aggregate detection (legacy rules).
        let projection = expand_projection(&select.projection, &bindings);
        let aggregate_query = !select.group_by.is_empty()
            || projection.iter().any(|(e, _)| contains_aggregate(e))
            || select.having.as_ref().is_some_and(contains_aggregate);
        let columns: Vec<String> = projection.iter().map(|(_, n)| n.clone()).collect();
        let mut items: Vec<Expr> = projection.into_iter().map(|(e, _)| e).collect();
        let visible = items.len();

        // ORDER BY keys: output ordinal, output alias, or hidden expression.
        let mut sort_keys = Vec::with_capacity(order_by.len());
        for item in order_by {
            let resolved = match &item.expr {
                Expr::Literal(Literal::Number(n)) => n
                    .parse::<usize>()
                    .ok()
                    .filter(|idx| *idx >= 1 && *idx <= visible)
                    .map(|idx| idx - 1),
                Expr::Identifier(ident) => {
                    let target = ident.normalized();
                    columns.iter().position(|c| upper_eq(c, &target))
                }
                _ => None,
            };
            let ordinal = resolved.unwrap_or_else(|| {
                items.push(item.expr.clone());
                items.len() - 1
            });
            sort_keys.push(SortKey {
                ordinal: Some(ordinal),
                asc: item.asc,
            });
        }

        let mut node = if aggregate_query {
            LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: select.group_by.clone(),
                having: select.having.clone(),
                items,
                names: columns.clone(),
                distinct: select.distinct,
            }
        } else {
            LogicalPlan::Project {
                input: Box::new(plan),
                items,
                names: columns.clone(),
                distinct: select.distinct,
            }
        };
        if !sort_keys.is_empty() {
            node = LogicalPlan::Sort {
                input: Box::new(node),
                keys: sort_keys,
            };
        }
        if limit.is_some() || offset.is_some() {
            node = LogicalPlan::Limit {
                input: Box::new(node),
                limit: limit.cloned(),
                offset: offset.cloned(),
            };
        }
        Ok((node, columns))
    }

    fn plan_table_factor(&mut self, factor: &TableFactor) -> StorageResult<LogicalPlan> {
        match factor {
            TableFactor::Table { name, alias } => {
                let base = name.base().normalized();
                let qualifier = alias
                    .as_ref()
                    .map(|a| a.normalized())
                    .unwrap_or_else(|| base.clone());
                // CTEs shadow base tables; innermost scope wins.
                for (depth, frame) in self.frames.iter().enumerate().rev() {
                    if let Some(columns) = frame.get(&base) {
                        let bindings = columns
                            .iter()
                            .map(|c| ColumnBinding {
                                qualifier: Some(qualifier.clone()),
                                name: c.to_ascii_uppercase(),
                            })
                            .collect();
                        return Ok(LogicalPlan::Scan(Scan {
                            source: ScanSource::Cte { name: base, depth },
                            bindings,
                        }));
                    }
                }
                let table = self
                    .db
                    .table(&base)
                    .ok_or_else(|| StorageError::UnknownTable(name.to_string()))?;
                let bindings = table
                    .schema
                    .columns
                    .iter()
                    .map(|c| ColumnBinding {
                        qualifier: Some(qualifier.clone()),
                        name: c.normalized_name(),
                    })
                    .collect();
                Ok(LogicalPlan::Scan(Scan {
                    source: ScanSource::Table(base),
                    bindings,
                }))
            }
            TableFactor::Derived { subquery, alias } => {
                let sub = self.plan(subquery)?;
                let qualifier = alias
                    .as_ref()
                    .map(|a| a.normalized())
                    .unwrap_or_else(|| "_DERIVED".to_string());
                let bindings = sub
                    .columns
                    .iter()
                    .map(|c| ColumnBinding {
                        qualifier: Some(qualifier.clone()),
                        name: c.to_ascii_uppercase(),
                    })
                    .collect();
                Ok(LogicalPlan::Scan(Scan {
                    source: ScanSource::Derived(Box::new(sub)),
                    bindings,
                }))
            }
        }
    }

    fn plan_join(
        &mut self,
        left: LogicalPlan,
        right: LogicalPlan,
        operator: JoinOperator,
        constraint: &JoinConstraint,
    ) -> StorageResult<LogicalPlan> {
        let left_width = left.bindings().len();
        let mut bindings = left.bindings().to_vec();
        bindings.extend(right.bindings().iter().cloned());

        let (equi_keys, residual) = match constraint {
            JoinConstraint::None => (Vec::new(), None),
            JoinConstraint::On(on) => {
                let extraction = equi_join_keys(on);
                let mut keys = Vec::new();
                let mut residual: Vec<Expr> = Vec::new();
                for (a, b, original) in extraction.pairs {
                    let qa = a.qualifier.as_ref().map(|i| i.value.as_str());
                    let qb = b.qualifier.as_ref().map(|i| i.value.as_str());
                    let ra = resolve_binding(&bindings, qa, &a.column.value);
                    let rb = resolve_binding(&bindings, qb, &b.column.value);
                    match (ra, rb) {
                        (Some(oa), Some(ob)) if oa < left_width && ob >= left_width => {
                            keys.push((oa, ob - left_width));
                        }
                        (Some(oa), Some(ob)) if ob < left_width && oa >= left_width => {
                            keys.push((ob, oa - left_width));
                        }
                        _ => residual.push(original.clone()),
                    }
                }
                residual.extend(extraction.residual.into_iter().cloned());
                // A hash join evaluates the residual only on key-matched
                // pairs; the oracle evaluates the full ON on every pair. To
                // keep even error behavior identical, take the hash path
                // only when every residual conjunct is benign — else fall
                // back to a nested loop over the original predicate.
                if !keys.is_empty() && !residual.iter().all(|r| benign(r, &bindings)) {
                    keys.clear();
                    residual = vec![on.clone()];
                }
                (keys, and_join(residual))
            }
        };

        Ok(LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            operator,
            equi_keys,
            residual,
            bindings,
        })
    }
}

/// Rebuild a conjunction from conjuncts (left-associated, original order).
pub(crate) fn and_join(conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut iter = conjuncts.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, Expr::and))
}

/// Sort-key resolution for set-operation ordering: keys must be ordinals or
/// output column names; anything else is a constant NULL key (mirroring the
/// legacy interpreter).
fn set_op_order_ordinal(expr: &Expr, columns: &[String]) -> Option<usize> {
    match expr {
        Expr::Literal(Literal::Number(n)) => {
            let idx: usize = n.parse().unwrap_or(0);
            let i = idx.saturating_sub(1);
            (i < columns.len()).then_some(i)
        }
        Expr::Identifier(ident) => {
            let target = ident.normalized();
            columns.iter().position(|c| upper_eq(c, &target))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------

/// Classify a WHERE conjunct for pushdown. Returns the ordinals (into the
/// FROM relation's combined bindings) of every column it references, or
/// `None` if it must stay above the join: it contains a subquery or
/// aggregate, it references columns that do not resolve locally (outer /
/// unknown names), or its evaluation can raise a row-dependent error —
/// evaluating such a predicate on rows the join would have eliminated must
/// remain unobservable.
fn pushable_conjunct(conjunct: &Expr, bindings: &[ColumnBinding]) -> Option<Vec<usize>> {
    if !error_free(conjunct) {
        return None;
    }
    let mut refs = Vec::new();
    collect_column_refs(conjunct, &mut refs);
    let mut ordinals = Vec::with_capacity(refs.len());
    for r in refs {
        let qualifier = r.qualifier.as_ref().map(|i| i.value.as_str());
        ordinals.push(resolve_binding(bindings, qualifier, &r.column.value)?);
    }
    Some(ordinals)
}

/// Whether an expression provably cannot raise an error when evaluated
/// against rows of `bindings`: its shape is [`error_free`] *and* every
/// column reference resolves locally (an unresolvable reference raises
/// `UnknownColumn` at evaluation time — or defers to an outer scope that
/// might — so it does not qualify). This is the gate for every rewrite
/// that changes *which rows* a predicate is evaluated on.
pub(crate) fn benign(expr: &Expr, bindings: &[ColumnBinding]) -> bool {
    if !error_free(expr) {
        return false;
    }
    let mut refs = Vec::new();
    collect_column_refs(expr, &mut refs);
    refs.iter().all(|r| {
        let qualifier = r.qualifier.as_ref().map(|i| i.value.as_str());
        resolve_binding(bindings, qualifier, &r.column.value).is_some()
    })
}

/// Whether evaluating this expression can never raise an error, for any
/// input row, *assuming its column references resolve* (see [`benign`]).
/// Conservative: only comparison/logic/pattern/list/null-test shapes over
/// columns and literals qualify (no arithmetic, functions, CASE, or
/// subqueries).
fn error_free(expr: &Expr) -> bool {
    match expr {
        Expr::Identifier(_) | Expr::CompoundIdentifier(_) | Expr::Literal(_) => true,
        Expr::BinaryOp { left, op, right } => {
            use BinaryOperator::*;
            matches!(op, Eq | NotEq | Lt | LtEq | Gt | GtEq | And | Or | Concat)
                && error_free(left)
                && error_free(right)
        }
        Expr::UnaryOp {
            op: UnaryOperator::Not,
            expr,
        } => error_free(expr),
        Expr::IsNull { expr, .. } => error_free(expr),
        Expr::Like { expr, pattern, .. } => error_free(expr) && error_free(pattern),
        Expr::Between {
            expr, low, high, ..
        } => error_free(expr) && error_free(low) && error_free(high),
        Expr::InList { expr, list, .. } => error_free(expr) && list.iter().all(error_free),
        Expr::Cast { expr, .. } => error_free(expr),
        Expr::Nested(inner) => error_free(inner),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Sargable predicate analysis
// ---------------------------------------------------------------------

/// A WHERE conjunct in a shape a secondary index can answer directly
/// (see [`crate::table`]'s `ColumnIndex`). Classification lives here with
/// the other predicate analyses; the physical compiler turns atoms into
/// index access paths.
#[derive(Debug, Clone)]
pub(crate) enum SargAtom {
    /// `col = literal` (either operand order).
    Point {
        col: usize,
        key: crate::value::Value,
    },
    /// `col </<=/>/>= literal` (either operand order, operator mirrored) or
    /// `col BETWEEN lit AND lit`. Each bound carries its inclusivity. The
    /// bounds always come from a *single* conjunct, so falling back to
    /// re-evaluating them reproduces that conjunct's truth table exactly.
    Range {
        col: usize,
        lower: Option<(crate::value::Value, bool)>,
        upper: Option<(crate::value::Value, bool)>,
    },
    /// `col IN (literal, literal, …)`.
    InList {
        col: usize,
        keys: Vec<crate::value::Value>,
    },
}

/// The column ordinal named by a bare (possibly parenthesized) column
/// reference, if it resolves against `bindings`.
pub(crate) fn sarg_column(expr: &Expr, bindings: &[ColumnBinding]) -> Option<usize> {
    match expr {
        Expr::Nested(inner) => sarg_column(inner, bindings),
        _ => {
            let cr = bp_sql::column_ref(expr)?;
            let qualifier = cr.qualifier.as_ref().map(|i| i.value.as_str());
            resolve_binding(bindings, qualifier, &cr.column.value)
        }
    }
}

/// The constant value of a bare (possibly parenthesized) literal.
fn sarg_literal(expr: &Expr) -> Option<crate::value::Value> {
    match expr {
        Expr::Literal(lit) => Some(crate::scalar::literal_value(lit)),
        Expr::Nested(inner) => sarg_literal(inner),
        _ => None,
    }
}

/// Mirror a comparison so the column sits on the left: `5 < id` ⇔ `id > 5`.
fn mirror_cmp(op: BinaryOperator) -> Option<BinaryOperator> {
    use BinaryOperator::*;
    match op {
        Eq => Some(Eq),
        Lt => Some(Gt),
        LtEq => Some(GtEq),
        Gt => Some(Lt),
        GtEq => Some(LtEq),
        _ => None,
    }
}

/// Classify one conjunct as an index-answerable atom, or `None` if it must
/// be evaluated as an ordinary predicate. Only `column ⋈ literal` shapes
/// qualify — never column-to-column or arithmetic — so the atom's truth
/// depends on a single indexed cell per row.
pub(crate) fn sargable_atom(conjunct: &Expr, bindings: &[ColumnBinding]) -> Option<SargAtom> {
    match conjunct {
        Expr::Nested(inner) => sargable_atom(inner, bindings),
        Expr::BinaryOp { left, op, right } => {
            use BinaryOperator::*;
            let (col, key, op) = match (sarg_column(left, bindings), sarg_literal(right)) {
                (Some(col), Some(key)) => (col, key, *op),
                _ => match (sarg_literal(left), sarg_column(right, bindings)) {
                    (Some(key), Some(col)) => (col, key, mirror_cmp(*op)?),
                    _ => return None,
                },
            };
            match op {
                Eq => Some(SargAtom::Point { col, key }),
                Lt => Some(SargAtom::Range {
                    col,
                    lower: None,
                    upper: Some((key, false)),
                }),
                LtEq => Some(SargAtom::Range {
                    col,
                    lower: None,
                    upper: Some((key, true)),
                }),
                Gt => Some(SargAtom::Range {
                    col,
                    lower: Some((key, false)),
                    upper: None,
                }),
                GtEq => Some(SargAtom::Range {
                    col,
                    lower: Some((key, true)),
                    upper: None,
                }),
                _ => None,
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let col = sarg_column(expr, bindings)?;
            let lo = sarg_literal(low)?;
            let hi = sarg_literal(high)?;
            Some(SargAtom::Range {
                col,
                lower: Some((lo, true)),
                upper: Some((hi, true)),
            })
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let col = sarg_column(expr, bindings)?;
            let keys = list.iter().map(sarg_literal).collect::<Option<Vec<_>>>()?;
            Some(SargAtom::InList { col, keys })
        }
        _ => None,
    }
}

/// Push a conjunct as deep as outer-join semantics allow. On success the
/// plan is mutated in place; otherwise the conjunct is handed back.
fn try_push(plan: &mut LogicalPlan, conjunct: Expr, ordinals: &[usize]) -> Result<(), Expr> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            operator,
            residual,
            bindings,
            ..
        } => {
            // Reducing a join's input also reduces the pairs its ON residual
            // is evaluated on; if that residual can error, the oracle (which
            // sees every pair) could fail where the pushed plan succeeds.
            if residual.as_ref().is_some_and(|r| !benign(r, bindings)) {
                return Err(conjunct);
            }
            let left_width = left.bindings().len();
            let (left_ok, right_ok) = match operator {
                JoinOperator::Inner | JoinOperator::Cross => (true, true),
                JoinOperator::LeftOuter => (true, false),
                JoinOperator::RightOuter => (false, true),
                JoinOperator::FullOuter => (false, false),
            };
            if left_ok && ordinals.iter().all(|&o| o < left_width) {
                return try_push(left, conjunct, ordinals);
            }
            if right_ok && ordinals.iter().all(|&o| o >= left_width) {
                let shifted: Vec<usize> = ordinals.iter().map(|o| o - left_width).collect();
                return try_push(right, conjunct, &shifted);
            }
            Err(conjunct)
        }
        // Filters in the FROM tree were created by earlier pushdowns and sit
        // directly above scans; conjoin in original order.
        LogicalPlan::Filter { predicate, .. } => {
            let existing = std::mem::replace(predicate, Expr::Wildcard);
            *predicate = Expr::and(existing, conjunct);
            Ok(())
        }
        LogicalPlan::Scan(_) => {
            let input = std::mem::replace(
                plan,
                LogicalPlan::Scan(Scan {
                    source: ScanSource::Empty,
                    bindings: Vec::new(),
                }),
            );
            *plan = LogicalPlan::Filter {
                input: Box::new(input),
                predicate: conjunct,
            };
            Ok(())
        }
        _ => Err(conjunct),
    }
}

// ---------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------

impl QueryPlan {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for (name, cte) in &self.ctes {
            writeln!(f, "{:indent$}Cte {name}", "", indent = indent)?;
            cte.fmt_indented(f, indent + 2)?;
        }
        self.root.fmt_indented(f, indent)
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

impl LogicalPlan {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = format!("{:indent$}", "", indent = indent);
        match self {
            LogicalPlan::Scan(scan) => match &scan.source {
                ScanSource::Table(name) => writeln!(f, "{pad}Scan {name}"),
                ScanSource::Cte { name, .. } => writeln!(f, "{pad}ScanCte {name}"),
                ScanSource::Empty => writeln!(f, "{pad}ScanEmpty"),
                ScanSource::Derived(sub) => {
                    writeln!(f, "{pad}ScanDerived")?;
                    sub.fmt_indented(f, indent + 2)
                }
            },
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter {predicate}")?;
                input.fmt_indented(f, indent + 2)
            }
            LogicalPlan::Join {
                left,
                right,
                operator,
                equi_keys,
                residual,
                ..
            } => {
                let kind = if equi_keys.is_empty() {
                    "NestedLoopJoin"
                } else {
                    "HashJoin"
                };
                write!(f, "{pad}{kind} {}", operator.as_sql())?;
                if !equi_keys.is_empty() {
                    write!(f, " keys={equi_keys:?}")?;
                }
                if let Some(residual) = residual {
                    write!(f, " residual={residual}")?;
                }
                writeln!(f)?;
                left.fmt_indented(f, indent + 2)?;
                right.fmt_indented(f, indent + 2)
            }
            LogicalPlan::Project {
                input,
                items,
                names,
                distinct,
            } => {
                writeln!(
                    f,
                    "{pad}Project{} [{} visible, {} hidden]",
                    if *distinct { " DISTINCT" } else { "" },
                    names.len(),
                    items.len() - names.len()
                )?;
                input.fmt_indented(f, indent + 2)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                names,
                items,
                distinct,
                ..
            } => {
                writeln!(
                    f,
                    "{pad}HashAggregate{} [{} keys, {} visible, {} hidden]",
                    if *distinct { " DISTINCT" } else { "" },
                    group_by.len(),
                    names.len(),
                    items.len() - names.len()
                )?;
                input.fmt_indented(f, indent + 2)
            }
            LogicalPlan::Sort { input, keys } => {
                let rendered: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        format!(
                            "{}{}",
                            k.ordinal
                                .map(|o| o.to_string())
                                .unwrap_or_else(|| "NULL".into()),
                            if k.asc { "" } else { " DESC" }
                        )
                    })
                    .collect();
                writeln!(f, "{pad}Sort [{}]", rendered.join(", "))?;
                input.fmt_indented(f, indent + 2)
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                write!(f, "{pad}Limit")?;
                if let Some(l) = limit {
                    write!(f, " limit={l}")?;
                }
                if let Some(o) = offset {
                    write!(f, " offset={o}")?;
                }
                writeln!(f)?;
                input.fmt_indented(f, indent + 2)
            }
            LogicalPlan::SetOp {
                op,
                all,
                left,
                right,
            } => {
                writeln!(
                    f,
                    "{pad}SetOp {}{}",
                    op.as_str(),
                    if *all { " ALL" } else { "" }
                )?;
                left.fmt_indented(f, indent + 2)?;
                right.fmt_indented(f, indent + 2)
            }
            LogicalPlan::Nested(sub) => {
                writeln!(f, "{pad}Nested")?;
                sub.fmt_indented(f, indent + 2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::schema::{Column, TableSchema};
    use bp_sql::{parse_query, DataType};

    fn two_table_db() -> Database {
        let mut db = Database::new("plans");
        db.create_table(TableSchema::new(
            "child",
            vec![
                Column::new("id", DataType::Integer).primary_key(),
                Column::new("parent_id", DataType::Integer),
                Column::new("amount", DataType::Float),
                Column::new("tag", DataType::Text),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "parent",
            vec![
                Column::new("id", DataType::Integer).primary_key(),
                Column::new("name", DataType::Text),
            ],
        ))
        .unwrap();
        db
    }

    fn plan_sql(db: &Database, sql: &str) -> QueryPlan {
        let query = parse_query(sql).unwrap();
        Planner::new(&db.snapshot()).plan(&query).unwrap()
    }

    #[test]
    fn equi_join_keys_are_extracted() {
        let db = two_table_db();
        let plan = plan_sql(
            &db,
            "SELECT c.tag, p.name FROM child c JOIN parent p ON c.parent_id = p.id",
        );
        let rendered = plan.to_string();
        assert!(rendered.contains("HashJoin"), "plan:\n{rendered}");
        assert!(rendered.contains("keys=[(1, 0)]"), "plan:\n{rendered}");
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let db = two_table_db();
        let plan = plan_sql(
            &db,
            "SELECT c.tag FROM child c JOIN parent p ON c.parent_id > p.id",
        );
        assert!(plan.to_string().contains("NestedLoopJoin"));
    }

    #[test]
    fn error_capable_residual_disables_hash_join() {
        let db = two_table_db();
        // `amount / id` can raise a division error, and the oracle evaluates
        // the full ON on every pair — so the planner must not hash-join.
        let plan = plan_sql(
            &db,
            "SELECT c.tag FROM child c JOIN parent p \
             ON c.parent_id = p.id AND c.amount / p.id > 0",
        );
        assert!(plan.to_string().contains("NestedLoopJoin"), "{plan}");
        // An error-free residual keeps the hash path.
        let plan2 = plan_sql(
            &db,
            "SELECT c.tag FROM child c JOIN parent p \
             ON c.parent_id = p.id AND c.tag <> p.name",
        );
        assert!(plan2.to_string().contains("HashJoin"), "{plan2}");
    }

    #[test]
    fn where_predicates_push_below_inner_joins() {
        let db = two_table_db();
        let plan = plan_sql(
            &db,
            "SELECT c.tag FROM child c JOIN parent p ON c.parent_id = p.id \
             WHERE p.name = 'x' AND c.amount > c.id AND 1 = 1",
        );
        let rendered = plan.to_string();
        // p.name = 'x' lands above the parent scan; c.amount > c.id above child;
        // 1 = 1 lands on the leftmost scan.
        let filter_count = rendered.matches("Filter").count();
        assert!(
            filter_count >= 2,
            "expected pushed filters, plan:\n{rendered}"
        );
        let join_pos = rendered.find("HashJoin").unwrap();
        let name_filter = rendered.find("Filter p.name = 'x'").unwrap();
        assert!(
            name_filter > join_pos,
            "filter should sit below the join, plan:\n{rendered}"
        );
    }

    #[test]
    fn pushdown_respects_left_outer_join() {
        let db = two_table_db();
        let plan = plan_sql(
            &db,
            "SELECT c.tag FROM child c LEFT JOIN parent p ON c.parent_id = p.id WHERE p.name = 'x'",
        );
        let rendered = plan.to_string();
        // The predicate on the null-extended side must stay above the join.
        let join_pos = rendered.find("HashJoin").unwrap();
        let filter_pos = rendered.find("Filter").unwrap();
        assert!(filter_pos < join_pos, "plan:\n{rendered}");
    }

    #[test]
    fn error_capable_where_disables_pushdown_entirely() {
        let db = two_table_db();
        // The subquery conjunct can error, so nothing is pushed: if `tag =
        // 'a'` pre-filtered rows, the subquery would be evaluated on fewer
        // rows than the oracle evaluates it on, and an error the oracle
        // raises could be suppressed. The whole clause stays as one filter.
        let plan = plan_sql(
            &db,
            "SELECT tag FROM child WHERE amount > (SELECT id FROM parent) AND tag = 'a'",
        );
        let rendered = plan.to_string();
        assert!(
            rendered.contains("Filter amount > (SELECT id FROM parent) AND tag = 'a'"),
            "plan:\n{rendered}"
        );
        assert_eq!(rendered.matches("Filter").count(), 1, "plan:\n{rendered}");
    }

    #[test]
    fn order_by_expression_becomes_hidden_column() {
        let db = two_table_db();
        let plan = plan_sql(&db, "SELECT tag FROM child ORDER BY amount * -1");
        let rendered = plan.to_string();
        assert!(rendered.contains("1 hidden"), "plan:\n{rendered}");
        assert!(rendered.contains("Sort [1]"), "plan:\n{rendered}");
        // Ordinal and alias keys need no hidden columns.
        let plan2 = plan_sql(
            &db,
            "SELECT tag, amount AS a FROM child ORDER BY 2 DESC, tag",
        );
        let rendered2 = plan2.to_string();
        assert!(rendered2.contains("0 hidden"), "plan:\n{rendered2}");
        assert!(rendered2.contains("Sort [1 DESC, 0]"), "plan:\n{rendered2}");
    }

    #[test]
    fn aggregates_plan_to_hash_aggregate() {
        let db = two_table_db();
        let plan = plan_sql(
            &db,
            "SELECT tag, COUNT(*) FROM child GROUP BY tag HAVING COUNT(*) > 1",
        );
        assert!(plan
            .to_string()
            .contains("HashAggregate [1 keys, 2 visible"));
    }

    #[test]
    fn cte_scans_resolve_to_cte_source() {
        let db = two_table_db();
        let plan = plan_sql(&db, "WITH c AS (SELECT tag FROM child) SELECT * FROM c");
        let rendered = plan.to_string();
        assert!(rendered.contains("Cte C"), "plan:\n{rendered}");
        assert!(rendered.contains("ScanCte C"), "plan:\n{rendered}");
        // `SELECT *` over a CTE re-expands the wildcard from normalized
        // bindings, exactly as the legacy engine does.
        assert_eq!(plan.columns, vec!["TAG"]);
    }

    #[test]
    fn unknown_table_errors_at_plan_time() {
        let db = two_table_db();
        let query = parse_query("SELECT * FROM missing").unwrap();
        assert!(matches!(
            Planner::new(&db.snapshot()).plan(&query),
            Err(StorageError::UnknownTable(_))
        ));
    }
}
