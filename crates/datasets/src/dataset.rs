//! Assembled benchmark corpora: database + SQL log + lexicon in one value.

use crate::profile::{BenchmarkKind, BenchmarkProfile, CorpusScale};
use crate::query_gen::{generate_workload, LogEntry};
use crate::schema_gen::{generate_database, lexicon_for};
use crate::vocab::DomainLexicon;
use bp_llm::EvalItem;
use bp_storage::Database;

/// A fully generated benchmark corpus.
#[derive(Debug, Clone)]
pub struct GeneratedBenchmark {
    /// Which benchmark this is.
    pub kind: BenchmarkKind,
    /// The generator profile used.
    pub profile: BenchmarkProfile,
    /// The populated database.
    pub database: Database,
    /// The SQL log (queries + gold questions + difficulty).
    pub log: Vec<LogEntry>,
    /// The domain lexicon (empty for public benchmarks).
    pub lexicon: DomainLexicon,
}

impl GeneratedBenchmark {
    /// Generate a benchmark corpus with `query_count` log entries at the
    /// default laptop scale.
    pub fn generate(kind: BenchmarkKind, query_count: usize, seed: u64) -> Self {
        Self::generate_scaled(kind, query_count, seed, CorpusScale::Laptop)
    }

    /// Generate a benchmark corpus at an explicit data-volume scale. Larger
    /// scales multiply per-table row counts (see [`CorpusScale`]), producing
    /// corpora big enough to expose asymptotic engine behavior; everything
    /// else (schema, query mix, determinism per seed) is unchanged.
    pub fn generate_scaled(
        kind: BenchmarkKind,
        query_count: usize,
        seed: u64,
        scale: CorpusScale,
    ) -> Self {
        let profile = kind.profile().scaled(scale);
        let database = generate_database(&profile, seed);
        let lexicon = lexicon_for(kind);
        let log = generate_workload(&database, &profile, &lexicon, query_count, seed ^ 0xbeef);
        GeneratedBenchmark {
            kind,
            profile,
            database,
            log,
            lexicon,
        }
    }

    /// The log as text-to-SQL evaluation items (question → gold SQL), the
    /// form consumed by the Figure 1 execution-accuracy harness.
    pub fn eval_items(&self) -> Vec<EvalItem> {
        self.log
            .iter()
            .map(|entry| EvalItem {
                question: entry.question.clone(),
                gold_sql: entry.sql.clone(),
                difficulty: entry.difficulty,
            })
            .collect()
    }

    /// The raw SQL log text (one statement per line), the format a BenchPress
    /// user would upload during dataset ingestion.
    pub fn log_text(&self) -> String {
        self.log
            .iter()
            .map(|entry| format!("{};", entry.sql))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The schema as a DDL script, the other ingestion artifact.
    pub fn schema_text(&self) -> String {
        self.database.schema_ddl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_consistent_corpus() {
        let corpus = GeneratedBenchmark::generate(BenchmarkKind::Spider, 15, 42);
        assert_eq!(corpus.kind, BenchmarkKind::Spider);
        assert_eq!(corpus.log.len(), 15);
        assert_eq!(corpus.eval_items().len(), 15);
        assert_eq!(corpus.database.table_count(), corpus.profile.schema_tables);
        assert!(corpus.lexicon.is_empty());
    }

    #[test]
    fn log_text_and_schema_text_are_ingestible() {
        let corpus = GeneratedBenchmark::generate(BenchmarkKind::Bird, 5, 1);
        let statements = bp_sql::parse_statements(&corpus.log_text()).unwrap();
        assert_eq!(statements.len(), 5);
        let mut fresh = bp_storage::Database::new("reingest");
        let created = fresh.ingest_ddl(&corpus.schema_text()).unwrap();
        assert_eq!(created, corpus.database.table_count());
    }

    #[test]
    fn beaver_corpus_has_lexicon() {
        let corpus = GeneratedBenchmark::generate(BenchmarkKind::Beaver, 3, 9);
        assert!(!corpus.lexicon.is_empty());
    }

    #[test]
    fn scaled_corpus_multiplies_rows_but_keeps_schema() {
        let base = GeneratedBenchmark::generate(BenchmarkKind::Spider, 4, 7);
        let medium =
            GeneratedBenchmark::generate_scaled(BenchmarkKind::Spider, 4, 7, CorpusScale::Medium);
        assert_eq!(medium.database.table_count(), base.database.table_count());
        assert_eq!(medium.schema_text(), base.schema_text());
        assert!(
            medium.database.total_rows() >= base.database.total_rows() * 7,
            "medium scale should hold ~8x the rows: {} vs {}",
            medium.database.total_rows(),
            base.database.total_rows()
        );
        for entry in &medium.log {
            medium.database.execute_sql(&entry.sql).unwrap();
        }
    }

    #[test]
    fn same_seed_same_corpus() {
        let a = GeneratedBenchmark::generate(BenchmarkKind::Fiben, 8, 5);
        let b = GeneratedBenchmark::generate(BenchmarkKind::Fiben, 8, 5);
        assert_eq!(a.log, b.log);
        assert_eq!(a.schema_text(), b.schema_text());
    }
}
