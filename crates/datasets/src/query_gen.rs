//! Workload (SQL log) generation.
//!
//! [`generate_workload`] produces the per-benchmark SQL logs BenchPress
//! ingests: executable queries over the generated database whose complexity
//! mix follows the benchmark profile (simple lookups for Spider-like
//! corpora, deep join + aggregation + subquery queries with domain-specific
//! filters for the Beaver-like corpus), each paired with a gold natural
//! language question and the difficulty descriptor used by the text-to-SQL
//! simulator.

use crate::profile::BenchmarkProfile;
use crate::vocab::DomainLexicon;
use bp_llm::WorkloadDifficulty;
use bp_sql::DataType;
use bp_storage::{Database, Table, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One entry of a generated SQL log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Sequential id within the log.
    pub id: usize,
    /// The SQL query text (always executable against the generated database).
    pub sql: String,
    /// The gold natural-language question for the query.
    pub question: String,
    /// Difficulty descriptor consumed by the text-to-SQL simulator.
    pub difficulty: WorkloadDifficulty,
}

/// Generate `count` log entries for a database following the profile's
/// template mix. Deterministic for a given seed; every returned query has
/// been verified to execute against `db`.
pub fn generate_workload(
    db: &Database,
    profile: &BenchmarkProfile,
    lexicon: &DomainLexicon,
    count: usize,
    seed: u64,
) -> Vec<LogEntry> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let cumulative = profile.query_mix.cumulative();
    let mut entries = Vec::with_capacity(count);
    let mut id = 0;
    while entries.len() < count {
        let draw: f64 = rng.gen();
        let template = cumulative.iter().position(|c| draw <= *c).unwrap_or(0);
        let sql = match template {
            0 => simple_query(db, profile, &mut rng),
            1 => aggregate_query(db, profile, &mut rng),
            2 => join_query(db, profile, &mut rng),
            3 => nested_query(db, profile, &mut rng),
            _ => deep_enterprise_query(db, profile, &mut rng),
        };
        let Some(sql) = sql else { continue };
        // Only keep queries that parse and execute.
        let Ok(query) = bp_sql::parse_query(&sql) else {
            continue;
        };
        if db.execute(&query).is_err() {
            continue;
        }
        let question = bp_llm::describe_query(&query);
        let domain_terms = lexicon.terms_in(&sql).len();
        entries.push(LogEntry {
            id,
            sql,
            question,
            difficulty: WorkloadDifficulty {
                schema_ambiguity: profile.schema_ambiguity,
                domain_terms,
            },
        });
        id += 1;
    }
    entries
}

// ---------------------------------------------------------------------
// Column/value pickers
// ---------------------------------------------------------------------

fn random_table<'a>(db: &'a Database, rng: &mut ChaCha8Rng) -> &'a Table {
    let tables: Vec<&Table> = db.tables().collect();
    tables[rng.gen_range(0..tables.len())]
}

fn columns_of_type(table: &Table, data_type: DataType, include_keys: bool) -> Vec<String> {
    table
        .schema
        .columns
        .iter()
        .filter(|c| c.data_type == data_type && (include_keys || !c.primary_key))
        .map(|c| c.name.clone())
        .collect()
}

fn non_key_columns(table: &Table) -> Vec<String> {
    table
        .schema
        .columns
        .iter()
        .filter(|c| !c.primary_key)
        .map(|c| c.name.clone())
        .collect()
}

fn primary_key(table: &Table) -> Option<String> {
    table
        .schema
        .columns
        .iter()
        .find(|c| c.primary_key)
        .map(|c| c.name.clone())
}

/// Sample a non-null value of a column from the table's actual rows, so
/// generated filters are guaranteed to reference real data.
fn sample_value(table: &Table, column: &str, rng: &mut ChaCha8Rng) -> Option<Value> {
    let values = table.column_values(column)?;
    let non_null: Vec<&&Value> = values.iter().filter(|v| !v.is_null()).collect();
    if non_null.is_empty() {
        return None;
    }
    Some((*non_null[rng.gen_range(0..non_null.len())]).clone())
}

fn literal(value: &Value) -> String {
    match value {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => d.to_string(),
        Value::Timestamp(t) => t.to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        other => other.to_string(),
    }
}

fn text_filter(table: &Table, rng: &mut ChaCha8Rng) -> Option<String> {
    let columns = columns_of_type(table, DataType::Text, false);
    if columns.is_empty() {
        return None;
    }
    let column = &columns[rng.gen_range(0..columns.len())];
    let value = sample_value(table, column, rng)?;
    if rng.gen_bool(0.2) {
        if let Value::Text(text) = &value {
            let prefix: String = text.chars().take(1).collect();
            if !prefix.is_empty() {
                return Some(format!("{column} LIKE '{prefix}%'"));
            }
        }
    }
    Some(format!("{column} = {}", literal(&value)))
}

fn numeric_filter(table: &Table, rng: &mut ChaCha8Rng) -> Option<String> {
    let mut columns = columns_of_type(table, DataType::Integer, false);
    columns.extend(columns_of_type(table, DataType::Float, false));
    if columns.is_empty() {
        return None;
    }
    let column = &columns[rng.gen_range(0..columns.len())];
    let value = sample_value(table, column, rng)?;
    let operator = ["<", "<=", ">", ">="][rng.gen_range(0..4usize)];
    Some(format!("{column} {operator} {}", literal(&value)))
}

fn any_filter(table: &Table, rng: &mut ChaCha8Rng) -> Option<String> {
    if rng.gen_bool(0.6) {
        text_filter(table, rng).or_else(|| numeric_filter(table, rng))
    } else {
        numeric_filter(table, rng).or_else(|| text_filter(table, rng))
    }
}

fn aggregate_call(table: &Table, rng: &mut ChaCha8Rng) -> String {
    let mut numeric = columns_of_type(table, DataType::Integer, false);
    numeric.extend(columns_of_type(table, DataType::Float, false));
    if numeric.is_empty() || rng.gen_bool(0.4) {
        return "COUNT(*)".to_string();
    }
    let column = &numeric[rng.gen_range(0..numeric.len())];
    let function = ["SUM", "AVG", "MAX", "MIN", "COUNT"][rng.gen_range(0..5usize)];
    if function == "COUNT" && rng.gen_bool(0.5) {
        format!("COUNT(DISTINCT {column})")
    } else {
        format!("{function}({column})")
    }
}

/// A (child, fk column, parent, parent pk) relationship usable for joins.
fn foreign_key_pair<'a>(
    db: &'a Database,
    rng: &mut ChaCha8Rng,
) -> Option<(&'a Table, String, &'a Table, String)> {
    let mut pairs = foreign_key_pairs(db);
    if pairs.is_empty() {
        return None;
    }
    let (child, fk, parent, pk) = pairs.swap_remove(rng.gen_range(0..pairs.len()));
    Some((child, fk, parent, pk))
}

/// Every (child, fk column, parent, parent pk) edge of the schema's
/// foreign-key graph, in catalog order.
fn foreign_key_pairs(db: &Database) -> Vec<(&Table, String, &Table, String)> {
    let mut pairs = Vec::new();
    for table in db.tables() {
        for column in &table.schema.columns {
            if let Some((parent_name, parent_column)) = &column.references {
                if let Some(parent) = db.table(parent_name) {
                    pairs.push((table, column.name.clone(), parent, parent_column.clone()));
                }
            }
        }
    }
    pairs
}

// ---------------------------------------------------------------------
// Query templates
// ---------------------------------------------------------------------

fn simple_query(
    db: &Database,
    _profile: &BenchmarkProfile,
    rng: &mut ChaCha8Rng,
) -> Option<String> {
    let table = random_table(db, rng);
    let columns = non_key_columns(table);
    if columns.is_empty() {
        return None;
    }
    let how_many = rng.gen_range(1..=columns.len().min(3));
    let projection: Vec<String> = (0..how_many)
        .map(|i| columns[(i * 7 + rng.gen_range(0..columns.len())) % columns.len()].clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let filter = any_filter(table, rng);
    let mut sql = format!(
        "SELECT {} FROM {}",
        projection.join(", "),
        table.schema.name
    );
    if let Some(filter) = filter {
        sql.push_str(&format!(" WHERE {filter}"));
    }
    if rng.gen_bool(0.25) {
        sql.push_str(&format!(" ORDER BY {}", projection[0]));
        if rng.gen_bool(0.5) {
            sql.push_str(" DESC");
        }
    }
    Some(sql)
}

fn aggregate_query(
    db: &Database,
    _profile: &BenchmarkProfile,
    rng: &mut ChaCha8Rng,
) -> Option<String> {
    let table = random_table(db, rng);
    let group_columns = columns_of_type(table, DataType::Text, false);
    let aggregate = aggregate_call(table, rng);
    let mut sql = if group_columns.is_empty() || rng.gen_bool(0.3) {
        format!("SELECT {aggregate} FROM {}", table.schema.name)
    } else {
        let group = &group_columns[rng.gen_range(0..group_columns.len())];
        format!(
            "SELECT {group}, {aggregate} FROM {} GROUP BY {group}",
            table.schema.name
        )
    };
    if let Some(filter) = any_filter(table, rng) {
        if rng.gen_bool(0.6) {
            // Insert WHERE before GROUP BY if present.
            if let Some(position) = sql.find(" GROUP BY ") {
                sql.insert_str(position, &format!(" WHERE {filter}"));
            } else {
                sql.push_str(&format!(" WHERE {filter}"));
            }
        }
    }
    if sql.contains("GROUP BY") && rng.gen_bool(0.45) {
        sql.push_str(" HAVING COUNT(*) > 1");
    }
    if sql.contains("GROUP BY") && rng.gen_bool(0.5) {
        sql.push_str(" ORDER BY 2 DESC");
        if rng.gen_bool(0.5) {
            sql.push_str(&format!(" LIMIT {}", rng.gen_range(1..=10)));
        }
    }
    Some(sql)
}

fn join_query(db: &Database, _profile: &BenchmarkProfile, rng: &mut ChaCha8Rng) -> Option<String> {
    // Multi-table equi-join shapes (3–5 tables, chain or star topology)
    // exercise the optimizer's join reordering; the FK data they follow is
    // deliberately skewed (see `schema_gen::populate`), so syntactic join
    // order is frequently the wrong one.
    if rng.gen_bool(0.4) {
        let multi = if rng.gen_bool(0.5) {
            join_chain_query(db, rng)
        } else {
            join_star_query(db, rng)
        };
        if let Some(sql) = multi {
            return Some(sql);
        }
    }
    let (child, fk, parent, pk) = foreign_key_pair(db, rng)?;
    let child_columns = non_key_columns(child);
    let parent_columns = non_key_columns(parent);
    if child_columns.is_empty() || parent_columns.is_empty() {
        return None;
    }
    let child_column = &child_columns[rng.gen_range(0..child_columns.len())];
    let parent_column = &parent_columns[rng.gen_range(0..parent_columns.len())];
    let mut sql = format!(
        "SELECT c.{child_column}, p.{parent_column} FROM {} c JOIN {} p ON c.{fk} = p.{pk}",
        child.schema.name, parent.schema.name
    );
    if let Some(filter) = text_filter(parent, rng).or_else(|| any_filter(child, rng)) {
        // Qualify the filter column with the right alias.
        let qualified = if parent
            .schema
            .column(filter.split_whitespace().next().unwrap_or(""))
            .is_some()
        {
            format!("p.{filter}")
        } else {
            format!("c.{filter}")
        };
        sql.push_str(&format!(" WHERE {qualified}"));
    }
    Some(sql)
}

/// Chain topology: follow foreign-key edges child → parent → grandparent
/// for 3–5 tables, equi-joining every hop in syntactic (child-first) order.
/// The generated schemas reference strictly earlier tables, so a chain
/// never revisits a relation.
fn join_chain_query(db: &Database, rng: &mut ChaCha8Rng) -> Option<String> {
    let edges = foreign_key_pairs(db);
    if edges.is_empty() {
        return None;
    }
    let target = rng.gen_range(3..=5usize);
    let (mut current, fk, parent, pk) = edges[rng.gen_range(0..edges.len())].clone();
    let mut chain: Vec<(&Table, String, String)> = vec![(current, fk, pk)];
    let mut tables = vec![current, parent];
    current = parent;
    while tables.len() < target {
        let Some((_, fk, parent, pk)) = edges
            .iter()
            .find(|(child, ..)| child.schema.name == current.schema.name)
            .cloned()
        else {
            break;
        };
        chain.push((current, fk, pk));
        tables.push(parent);
        current = parent;
    }
    if tables.len() < 3 {
        return None;
    }
    let first_col = non_key_columns(tables[0]).first()?.clone();
    let last = tables.len() - 1;
    let last_col = primary_key(tables[last])?;
    let mut sql = format!(
        "SELECT t0.{first_col}, t{last}.{last_col} FROM {} t0",
        tables[0].schema.name
    );
    for (hop, (_, fk, pk)) in chain.iter().enumerate() {
        sql.push_str(&format!(
            " JOIN {} t{} ON t{}.{fk} = t{}.{pk}",
            tables[hop + 1].schema.name,
            hop + 1,
            hop,
            hop + 1,
        ));
    }
    if let Some(filter) = any_filter(tables[last], rng) {
        sql.push_str(&format!(" WHERE t{last}.{filter}"));
    }
    Some(sql)
}

/// Star topology: one parent (hub) equi-joined by 2–4 distinct child
/// tables through their foreign keys — the dimension-table shape. Joins
/// are spelled child-first so the hub sits in the middle of the syntactic
/// order, which only a cost-based reorder can fix.
fn join_star_query(db: &Database, rng: &mut ChaCha8Rng) -> Option<String> {
    // A spoke is (child table, fk column on the child, pk column on the hub).
    type Spoke<'a> = (&'a Table, String, String);
    let edges = foreign_key_pairs(db);
    // Group children by parent; need a hub with at least two children.
    let mut hubs: Vec<(&Table, Vec<Spoke>)> = Vec::new();
    for (child, fk, parent, pk) in &edges {
        match hubs
            .iter_mut()
            .find(|(hub, _)| hub.schema.name == parent.schema.name)
        {
            Some((_, spokes)) => spokes.push((child, fk.clone(), pk.clone())),
            None => hubs.push((parent, vec![(child, fk.clone(), pk.clone())])),
        }
    }
    hubs.retain(|(_, spokes)| spokes.len() >= 2);
    if hubs.is_empty() {
        return None;
    }
    let (hub, spokes) = &hubs[rng.gen_range(0..hubs.len())];
    let arms = spokes.len().min(rng.gen_range(2..=4usize));
    let first_col = non_key_columns(spokes[0].0).first()?.clone();
    let hub_pk = primary_key(hub)?;
    let mut sql = format!(
        "SELECT t0.{first_col}, hub.{hub_pk} FROM {} t0 JOIN {} hub ON t0.{} = hub.{}",
        spokes[0].0.schema.name, hub.schema.name, spokes[0].1, spokes[0].2,
    );
    for (i, (child, fk, pk)) in spokes.iter().take(arms).enumerate().skip(1) {
        sql.push_str(&format!(
            " JOIN {} t{i} ON t{i}.{fk} = hub.{pk}",
            child.schema.name
        ));
    }
    if let Some(filter) = any_filter(hub, rng) {
        sql.push_str(&format!(" WHERE hub.{filter}"));
    }
    Some(sql)
}

fn nested_query(db: &Database, profile: &BenchmarkProfile, rng: &mut ChaCha8Rng) -> Option<String> {
    if rng.gen_bool(0.5) {
        // Membership subquery over a foreign key.
        let (child, fk, parent, pk) = foreign_key_pair(db, rng)?;
        let parent_columns = non_key_columns(parent);
        if parent_columns.is_empty() {
            return None;
        }
        let projection = &parent_columns[rng.gen_range(0..parent_columns.len())];
        let inner_filter = any_filter(child, rng)?;
        Some(format!(
            "SELECT {projection} FROM {} WHERE {pk} IN (SELECT {fk} FROM {} WHERE {inner_filter})",
            parent.schema.name, child.schema.name
        ))
    } else {
        // Scalar comparison against an aggregate of the same table.
        let table = random_table(db, rng);
        let mut numeric = columns_of_type(table, DataType::Integer, false);
        numeric.extend(columns_of_type(table, DataType::Float, false));
        if numeric.is_empty() {
            return None;
        }
        let column = &numeric[rng.gen_range(0..numeric.len())];
        let projection = non_key_columns(table);
        let projected = &projection[rng.gen_range(0..projection.len())];
        let extra = text_filter(table, rng)
            .map(|f| format!(" AND {f}"))
            .filter(|_| rng.gen_bool(profile.query_mix.nested + 0.3))
            .unwrap_or_default();
        Some(format!(
            "SELECT {projected} FROM {t} WHERE {column} > (SELECT AVG({column}) FROM {t}){extra}",
            t = table.schema.name
        ))
    }
}

fn deep_enterprise_query(
    db: &Database,
    _profile: &BenchmarkProfile,
    rng: &mut ChaCha8Rng,
) -> Option<String> {
    let (child, fk, parent, pk) = foreign_key_pair(db, rng)?;
    let group_columns = columns_of_type(parent, DataType::Text, false);
    if group_columns.is_empty() {
        return None;
    }
    let group = &group_columns[rng.gen_range(0..group_columns.len())];
    let mut child_numeric = columns_of_type(child, DataType::Integer, false);
    child_numeric.extend(columns_of_type(child, DataType::Float, false));
    let agg2 = child_numeric
        .first()
        .map(|c| format!("MAX(c.{c})"))
        .unwrap_or_else(|| "COUNT(*)".to_string());
    let child_pk = primary_key(child).unwrap_or_else(|| fk.clone());
    let parent_filter = text_filter(parent, rng).map(|f| format!("p.{f}"));
    let child_scalar = child_numeric.first().map(|c| {
        format!(
            "c.{c} > (SELECT AVG({c}) FROM {child_table})",
            child_table = child.schema.name
        )
    });
    let mut conditions: Vec<String> = Vec::new();
    conditions.extend(parent_filter);
    conditions.extend(child_scalar);
    if let Some(extra) = text_filter(child, rng) {
        if rng.gen_bool(0.5) {
            conditions.push(format!("c.{extra}"));
        }
    }
    let where_clause = if conditions.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conditions.join(" AND "))
    };
    let mut sql = format!(
        "SELECT p.{group}, COUNT(DISTINCT c.{child_pk}), {agg2} FROM {child_table} c JOIN {parent_table} p ON c.{fk} = p.{pk}{where_clause} GROUP BY p.{group} HAVING COUNT(*) >= 1 ORDER BY 2 DESC",
        child_table = child.schema.name,
        parent_table = parent.schema.name,
    );
    if rng.gen_bool(0.6) {
        sql.push_str(&format!(" LIMIT {}", rng.gen_range(1..=5)));
    }
    // Occasionally wrap the whole thing in a CTE, matching the paper's
    // Figure 3 presentation of warehouse queries.
    if rng.gen_bool(0.35) {
        sql = format!(
            "WITH PerGroup AS ({sql}) SELECT COUNT(*), MAX({group}) FROM PerGroup",
            group = group
        );
    }
    Some(sql)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchmarkKind;
    use crate::schema_gen::{generate_database, lexicon_for};
    use bp_metrics::QueryComplexity;

    fn workload(kind: BenchmarkKind, count: usize, seed: u64) -> (Database, Vec<LogEntry>) {
        let profile = kind.profile();
        let db = generate_database(&profile, seed);
        let lexicon = lexicon_for(kind);
        let entries = generate_workload(&db, &profile, &lexicon, count, seed);
        (db, entries)
    }

    #[test]
    fn generates_requested_number_of_executable_queries() {
        let (db, entries) = workload(BenchmarkKind::Spider, 25, 1);
        assert_eq!(entries.len(), 25);
        for entry in &entries {
            let query = bp_sql::parse_query(&entry.sql).expect("parses");
            db.execute(&query).expect("executes");
            assert!(!entry.question.is_empty());
        }
    }

    #[test]
    fn workload_generation_is_deterministic() {
        let (_, a) = workload(BenchmarkKind::Bird, 10, 7);
        let (_, b) = workload(BenchmarkKind::Bird, 10, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn beaver_workload_is_more_complex_than_spider() {
        let (_, spider) = workload(BenchmarkKind::Spider, 30, 3);
        let (_, beaver) = workload(BenchmarkKind::Beaver, 30, 3);
        let complexity = |entries: &[LogEntry]| {
            let analyses: Vec<_> = entries
                .iter()
                .map(|e| bp_sql::analyze(&bp_sql::parse_query(&e.sql).unwrap()))
                .collect();
            QueryComplexity::from_analyses("w", &analyses)
        };
        let spider_complexity = complexity(&spider);
        let beaver_complexity = complexity(&beaver);
        assert!(beaver_complexity.tokens > spider_complexity.tokens * 1.5);
        assert!(beaver_complexity.aggregations > spider_complexity.aggregations);
        assert!(beaver_complexity.tables > spider_complexity.tables);
        assert!(beaver_complexity.nestings > spider_complexity.nestings);
    }

    #[test]
    fn workloads_contain_multi_table_join_chains_counted_in_complexity() {
        let (db, entries) = workload(BenchmarkKind::Bird, 60, 11);
        let multi_join: Vec<_> = entries
            .iter()
            .filter(|e| {
                let query = bp_sql::parse_query(&e.sql).expect("parses");
                bp_sql::analyze(&query).tables.len() >= 3
            })
            .collect();
        assert!(
            !multi_join.is_empty(),
            "expected 3+-table join chains in a 60-query workload"
        );
        // The chain/star shapes must execute on the generated data and
        // register in the Table 1/2 complexity metric exactly like the
        // hand-written templates do.
        for entry in &multi_join {
            let query = bp_sql::parse_query(&entry.sql).unwrap();
            db.execute(&query).expect("multi-join executes");
        }
        let analyses: Vec<_> = entries
            .iter()
            .map(|e| bp_sql::analyze(&bp_sql::parse_query(&e.sql).unwrap()))
            .collect();
        let complexity = QueryComplexity::from_analyses("w", &analyses);
        assert!(
            complexity.tables > 1.0,
            "join shapes should lift the mean table count above single-table, got {}",
            complexity.tables
        );
    }

    #[test]
    fn beaver_queries_carry_domain_terms_and_ambiguity() {
        let (_, entries) = workload(BenchmarkKind::Beaver, 30, 5);
        let with_domain_terms = entries
            .iter()
            .filter(|e| e.difficulty.domain_terms > 0)
            .count();
        assert!(
            with_domain_terms >= 5,
            "expected domain terms in the Beaver workload, got {with_domain_terms}/30"
        );
        assert!(entries.iter().all(|e| e.difficulty.schema_ambiguity > 0.5));
    }

    #[test]
    fn spider_queries_have_no_domain_terms() {
        let (_, entries) = workload(BenchmarkKind::Spider, 20, 5);
        assert!(entries.iter().all(|e| e.difficulty.domain_terms == 0));
    }

    #[test]
    fn questions_describe_their_queries() {
        let (_, entries) = workload(BenchmarkKind::Bird, 10, 11);
        for entry in &entries {
            let report = bp_metrics::coverage_sql(&entry.sql, &entry.question).unwrap();
            assert!(
                report.score() > 0.6,
                "gold question should describe its query well: {} -> {} (score {})",
                entry.sql,
                entry.question,
                report.score()
            );
        }
    }

    #[test]
    fn ids_are_sequential() {
        let (_, entries) = workload(BenchmarkKind::Fiben, 12, 2);
        for (index, entry) in entries.iter().enumerate() {
            assert_eq!(entry.id, index);
        }
    }
}
