//! Benchmark profiles: the knobs that make a generated corpus look like
//! Spider, Bird, Fiben, or Beaver.
//!
//! Each profile carries (a) the query-level complexity targets of Table 1,
//! (b) the data-level targets of Table 2, and (c) the generator parameters
//! (schema size, naming ambiguity, null rate, domain-term usage, query
//! template mix) that make the generated corpus land near those targets. The
//! absolute row counts are scaled down by a configurable factor so that
//! benchmarks run at laptop scale; the scaling preserves all cross-benchmark
//! ratios (see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// The four benchmarks BenchPress ships with (paper §4.1, Dataset Ingestion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkKind {
    /// Spider: clean academic cross-domain benchmark.
    Spider,
    /// Bird: larger academic benchmark with bigger databases.
    Bird,
    /// Fiben: financial benchmark with nested analytical queries.
    Fiben,
    /// Beaver: the private enterprise (data-warehouse) benchmark.
    Beaver,
}

impl BenchmarkKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkKind::Spider => "Spider",
            BenchmarkKind::Bird => "Bird",
            BenchmarkKind::Fiben => "Fiben",
            BenchmarkKind::Beaver => "Beaver",
        }
    }

    /// All benchmark kinds, public benchmarks first.
    pub fn all() -> &'static [BenchmarkKind] {
        &[
            BenchmarkKind::Spider,
            BenchmarkKind::Bird,
            BenchmarkKind::Fiben,
            BenchmarkKind::Beaver,
        ]
    }

    /// Whether this is the private enterprise benchmark.
    pub fn is_enterprise(&self) -> bool {
        matches!(self, BenchmarkKind::Beaver)
    }

    /// The generator profile for this benchmark.
    pub fn profile(&self) -> BenchmarkProfile {
        match self {
            BenchmarkKind::Spider => BenchmarkProfile {
                kind: *self,
                // Table 1 paper targets (Beaver minus the reported deltas).
                target_keywords: 3.0,
                target_tokens: 18.5,
                target_tables: 1.5,
                target_columns: 2.9,
                target_aggregations: 0.9,
                target_nestings: 1.1,
                // Table 2 paper targets.
                target_columns_per_table: 5.4,
                target_rows_per_table: 2_048.0,
                target_tables_per_db: 5.0,
                target_uniqueness: 0.73,
                target_sparsity: 0.0,
                target_data_types: 4,
                // Generator parameters.
                schema_tables: 6,
                columns_per_table: 5,
                rows_per_table: 128,
                null_rate: 0.0,
                distinct_fraction: 0.73,
                duplicate_column_rate: 0.05,
                domain_term_rate: 0.0,
                schema_ambiguity: 0.08,
                query_mix: QueryMix {
                    simple: 0.45,
                    aggregate: 0.30,
                    join: 0.20,
                    nested: 0.05,
                    deep_enterprise: 0.0,
                },
            },
            BenchmarkKind::Bird => BenchmarkProfile {
                kind: *self,
                target_keywords: 4.2,
                target_tokens: 31.2,
                target_tables: 1.9,
                target_columns: 4.4,
                target_aggregations: 0.7,
                target_nestings: 1.1,
                target_columns_per_table: 6.8,
                target_rows_per_table: 549_000.0,
                target_tables_per_db: 45.0,
                target_uniqueness: 0.79,
                target_sparsity: 0.0,
                target_data_types: 6,
                schema_tables: 12,
                columns_per_table: 7,
                rows_per_table: 512,
                null_rate: 0.0,
                distinct_fraction: 0.79,
                duplicate_column_rate: 0.10,
                domain_term_rate: 0.05,
                schema_ambiguity: 0.15,
                query_mix: QueryMix {
                    simple: 0.35,
                    aggregate: 0.35,
                    join: 0.22,
                    nested: 0.08,
                    deep_enterprise: 0.0,
                },
            },
            BenchmarkKind::Fiben => BenchmarkProfile {
                kind: *self,
                target_keywords: 9.5,
                target_tokens: 161.9,
                target_tables: 3.8,
                target_columns: 9.7,
                target_aggregations: 2.0,
                target_nestings: 1.56,
                target_columns_per_table: 2.5,
                target_rows_per_table: 76_000.0,
                target_tables_per_db: 152.0,
                target_uniqueness: 0.59,
                target_sparsity: 0.0,
                target_data_types: 6,
                schema_tables: 24,
                columns_per_table: 3,
                rows_per_table: 256,
                null_rate: 0.0,
                distinct_fraction: 0.59,
                duplicate_column_rate: 0.25,
                domain_term_rate: 0.15,
                schema_ambiguity: 0.30,
                query_mix: QueryMix {
                    simple: 0.10,
                    aggregate: 0.30,
                    join: 0.30,
                    nested: 0.30,
                    deep_enterprise: 0.0,
                },
            },
            BenchmarkKind::Beaver => BenchmarkProfile {
                kind: *self,
                target_keywords: 15.6,
                target_tokens: 99.8,
                target_tables: 4.2,
                target_columns: 11.9,
                target_aggregations: 5.5,
                target_nestings: 2.05,
                target_columns_per_table: 15.6,
                target_rows_per_table: 128_000.0,
                target_tables_per_db: 99.0,
                target_uniqueness: 0.459,
                target_sparsity: 0.15,
                target_data_types: 4,
                schema_tables: 40,
                columns_per_table: 15,
                rows_per_table: 384,
                null_rate: 0.15,
                distinct_fraction: 0.459,
                duplicate_column_rate: 0.55,
                domain_term_rate: 0.6,
                schema_ambiguity: 0.70,
                query_mix: QueryMix {
                    simple: 0.03,
                    aggregate: 0.17,
                    join: 0.25,
                    nested: 0.25,
                    deep_enterprise: 0.30,
                },
            },
        }
    }
}

/// Distribution over query-generation templates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryMix {
    /// Single-table select/filter queries.
    pub simple: f64,
    /// Single-table aggregation with GROUP BY.
    pub aggregate: f64,
    /// Multi-table join queries.
    pub join: f64,
    /// Queries with one nested subquery.
    pub nested: f64,
    /// Deep enterprise queries: joins + aggregation + nested subquery +
    /// domain-specific filters (the Beaver style of Figure 3).
    pub deep_enterprise: f64,
}

impl QueryMix {
    /// Normalized cumulative distribution used for sampling.
    pub fn cumulative(&self) -> [f64; 5] {
        let total = self.simple + self.aggregate + self.join + self.nested + self.deep_enterprise;
        let total = if total <= 0.0 { 1.0 } else { total };
        let mut acc = 0.0;
        let mut out = [0.0; 5];
        for (i, w) in [
            self.simple,
            self.aggregate,
            self.join,
            self.nested,
            self.deep_enterprise,
        ]
        .iter()
        .enumerate()
        {
            acc += w / total;
            out[i] = acc.min(1.0);
        }
        out[4] = 1.0;
        out
    }
}

/// Data-volume scale for generated corpora. The default profiles target
/// laptop-scale row counts; larger settings multiply `rows_per_table` so
/// that asymptotic engine behavior (hash join vs nested loop, pushdown)
/// becomes measurable. All cross-benchmark ratios are preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CorpusScale {
    /// 1× rows (the historical default).
    #[default]
    Laptop,
    /// 8× rows.
    Medium,
    /// 32× rows — large enough that nested-loop joins are visibly
    /// quadratic while the planned engine stays near-linear.
    Large,
}

impl CorpusScale {
    /// The row-count multiplier applied to `rows_per_table`.
    pub fn row_factor(&self) -> usize {
        match self {
            CorpusScale::Laptop => 1,
            CorpusScale::Medium => 8,
            CorpusScale::Large => 32,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CorpusScale::Laptop => "laptop",
            CorpusScale::Medium => "medium",
            CorpusScale::Large => "large",
        }
    }
}

/// Generator parameters plus paper targets for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Which benchmark this profile describes.
    pub kind: BenchmarkKind,
    /// Table 1 target: mean structural keywords per query.
    pub target_keywords: f64,
    /// Table 1 target: mean tokens per query.
    pub target_tokens: f64,
    /// Table 1 target: mean distinct tables per query.
    pub target_tables: f64,
    /// Table 1 target: mean distinct columns per query.
    pub target_columns: f64,
    /// Table 1 target: mean aggregate calls per query.
    pub target_aggregations: f64,
    /// Table 1 target: mean nesting depth per query.
    pub target_nestings: f64,
    /// Table 2 target: mean columns per table.
    pub target_columns_per_table: f64,
    /// Table 2 target: mean rows per table (paper scale).
    pub target_rows_per_table: f64,
    /// Table 2 target: tables per database.
    pub target_tables_per_db: f64,
    /// Table 2 target: mean value uniqueness (0..1).
    pub target_uniqueness: f64,
    /// Table 2 target: mean sparsity / NULL fraction (0..1).
    pub target_sparsity: f64,
    /// Table 2 target: distinct data types.
    pub target_data_types: usize,
    /// Number of tables the generator creates (scaled-down schema).
    pub schema_tables: usize,
    /// Columns per generated table (mean).
    pub columns_per_table: usize,
    /// Rows per generated table (scaled down; ratios across benchmarks are
    /// preserved).
    pub rows_per_table: usize,
    /// Probability that any generated cell is NULL.
    pub null_rate: f64,
    /// Fraction of distinct values per column (drives uniqueness).
    pub distinct_fraction: f64,
    /// Probability that a non-key column reuses a name that already exists in
    /// another table (drives schema ambiguity).
    pub duplicate_column_rate: f64,
    /// Probability that a query filter uses a domain-specific term.
    pub domain_term_rate: f64,
    /// Overall schema ambiguity in `[0, 1]` fed to the text-to-SQL simulator.
    pub schema_ambiguity: f64,
    /// Query template mix.
    pub query_mix: QueryMix,
}

impl BenchmarkProfile {
    /// Scale the generated data volume by multiplying `rows_per_table`.
    pub fn with_row_scale(mut self, factor: usize) -> Self {
        self.rows_per_table = self.rows_per_table.saturating_mul(factor.max(1));
        self
    }

    /// Apply a [`CorpusScale`] setting.
    pub fn scaled(self, scale: CorpusScale) -> Self {
        self.with_row_scale(scale.row_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_multiplies_rows_and_preserves_ratios() {
        let base = BenchmarkKind::Spider.profile();
        let large = BenchmarkKind::Spider.profile().scaled(CorpusScale::Large);
        assert_eq!(large.rows_per_table, base.rows_per_table * 32);
        assert_eq!(
            BenchmarkKind::Beaver
                .profile()
                .scaled(CorpusScale::Medium)
                .rows_per_table,
            BenchmarkKind::Beaver.profile().rows_per_table * 8
        );
        assert_eq!(base.scaled(CorpusScale::Laptop).rows_per_table, 128);
        assert_eq!(CorpusScale::Large.name(), "large");
    }

    #[test]
    fn all_profiles_exist_and_are_consistent() {
        for kind in BenchmarkKind::all() {
            let p = kind.profile();
            assert_eq!(p.kind, *kind);
            assert!(p.schema_tables > 0);
            assert!(p.columns_per_table > 0);
            assert!(p.rows_per_table > 0);
            assert!((0.0..=1.0).contains(&p.null_rate));
            assert!((0.0..=1.0).contains(&p.distinct_fraction));
            assert!((0.0..=1.0).contains(&p.schema_ambiguity));
            let cumulative = p.query_mix.cumulative();
            assert!((cumulative[4] - 1.0).abs() < 1e-9);
            for pair in cumulative.windows(2) {
                assert!(pair[1] >= pair[0]);
            }
        }
    }

    #[test]
    fn beaver_is_the_hardest_benchmark() {
        let beaver = BenchmarkKind::Beaver.profile();
        for kind in [
            BenchmarkKind::Spider,
            BenchmarkKind::Bird,
            BenchmarkKind::Fiben,
        ] {
            let other = kind.profile();
            assert!(beaver.target_keywords > other.target_keywords);
            assert!(beaver.target_aggregations > other.target_aggregations);
            assert!(beaver.target_nestings > other.target_nestings);
            assert!(beaver.schema_ambiguity > other.schema_ambiguity);
            assert!(beaver.domain_term_rate > other.domain_term_rate);
            assert!(beaver.null_rate > other.null_rate);
        }
    }

    #[test]
    fn only_beaver_is_enterprise() {
        assert!(BenchmarkKind::Beaver.is_enterprise());
        assert!(!BenchmarkKind::Spider.is_enterprise());
        assert!(!BenchmarkKind::Bird.is_enterprise());
        assert!(!BenchmarkKind::Fiben.is_enterprise());
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            BenchmarkKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn query_mix_handles_zero_total() {
        let mix = QueryMix {
            simple: 0.0,
            aggregate: 0.0,
            join: 0.0,
            nested: 0.0,
            deep_enterprise: 0.0,
        };
        let c = mix.cumulative();
        assert_eq!(c[4], 1.0);
    }
}
