//! # bp-datasets — synthetic benchmark corpora for the BenchPress reproduction
//!
//! The paper works with four text-to-SQL benchmarks: the public Spider, Bird
//! and Fiben corpora and the private enterprise Beaver corpus (MIT data
//! warehouse SQL logs). None can be redistributed here, so this crate
//! generates synthetic stand-ins whose *statistics* are calibrated to the
//! paper's Table 1 (query-level complexity) and Table 2 (data-level
//! complexity): schema size, column-name duplication, value uniqueness, NULL
//! sparsity, query nesting/aggregation mix, and enterprise domain vocabulary.
//!
//! ## Quick example
//!
//! ```
//! use bp_datasets::{BenchmarkKind, GeneratedBenchmark};
//!
//! let corpus = GeneratedBenchmark::generate(BenchmarkKind::Spider, 10, 42);
//! assert_eq!(corpus.log.len(), 10);
//! // Every generated query executes against the generated database.
//! for entry in &corpus.log {
//!     corpus.database.execute_sql(&entry.sql).unwrap();
//! }
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod profile;
pub mod query_gen;
pub mod schema_gen;
pub mod vocab;

pub use dataset::GeneratedBenchmark;
pub use profile::{BenchmarkKind, BenchmarkProfile, CorpusScale, QueryMix};
pub use query_gen::{generate_workload, LogEntry};
pub use schema_gen::{generate_database, lexicon_for};
pub use vocab::{DomainLexicon, DomainTerm};
