//! Synthetic schema and data generation.
//!
//! [`generate_database`] builds a populated [`Database`] whose shape follows
//! a [`BenchmarkProfile`]: number of tables, columns per table, data-type
//! diversity, value uniqueness, NULL sparsity, and — for the enterprise
//! profile — warehouse-style naming with heavy column-name duplication and
//! near-duplicate tables (the `ACADEMIC_TERMS` vs `ACADEMIC_TERMS_ALL`
//! pattern the paper describes).

use crate::profile::{BenchmarkKind, BenchmarkProfile};
use crate::vocab::{
    DomainLexicon, ENTERPRISE_SHARED_COLUMNS, ENTERPRISE_SPECIFIC_SUFFIXES, ENTERPRISE_SUBJECTS,
    PUBLIC_ATTRIBUTES, PUBLIC_ENTITIES,
};
use bp_sql::DataType;
use bp_storage::{Column, Database, TableSchema, Value};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Values used for enterprise text columns so that domain terms actually
/// appear in the data (and therefore in generated filters).
const ENTERPRISE_TEXT_VALUES: &[&str] = &[
    "J-term",
    "Fall",
    "Spring",
    "IAP",
    "STREET",
    "PO BOX",
    "ACTIVE",
    "INACTIVE",
    "Course 6",
    "UROP",
    "DLC-021",
    "FY26",
    "EXEMPT",
    "NON-EXEMPT",
    "GRAD",
    "UNDERGRAD",
];

/// Public-benchmark text values (clean, unambiguous categories).
const PUBLIC_TEXT_VALUES: &[&str] = &[
    "USA",
    "France",
    "Japan",
    "Brazil",
    "rock",
    "jazz",
    "classical",
    "economy",
    "business",
    "first",
    "red",
    "blue",
    "green",
    "small",
    "medium",
    "large",
    "north",
    "south",
    "east",
    "west",
];

/// Generate a populated database for a benchmark profile.
///
/// `seed` makes generation fully deterministic; the same seed always yields
/// byte-identical schemas and rows.
pub fn generate_database(profile: &BenchmarkProfile, seed: u64) -> Database {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = Database::new(profile.kind.name());
    let schemas = if profile.kind.is_enterprise() {
        enterprise_schemas(profile, &mut rng)
    } else {
        public_schemas(profile, &mut rng)
    };
    for schema in schemas {
        db.create_table(schema)
            .expect("generated table names are unique");
    }
    populate(&mut db, profile, &mut rng);
    db
}

fn data_type_cycle(profile: &BenchmarkProfile) -> Vec<DataType> {
    let mut types = vec![
        DataType::Integer,
        DataType::Text,
        DataType::Float,
        DataType::Date,
    ];
    if profile.target_data_types > 4 {
        types.push(DataType::Timestamp);
    }
    if profile.target_data_types > 5 {
        types.push(DataType::Boolean);
    }
    types
}

fn public_schemas(profile: &BenchmarkProfile, rng: &mut ChaCha8Rng) -> Vec<TableSchema> {
    let mut entities: Vec<&str> = PUBLIC_ENTITIES.to_vec();
    entities.shuffle(rng);
    let types = data_type_cycle(profile);
    let mut schemas: Vec<TableSchema> = Vec::new();
    for index in 0..profile.schema_tables {
        let entity = entities[index % entities.len()];
        let table_name = if index < entities.len() {
            entity.to_string()
        } else {
            format!("{entity}_{index}")
        };
        let singular = entity.trim_end_matches('s');
        let mut columns =
            vec![Column::new(format!("{singular}_id"), DataType::Integer).primary_key()];
        // Optional foreign key to an earlier table to enable joins.
        if !schemas.is_empty() && rng.gen_bool(0.6) {
            let parent = &schemas[rng.gen_range(0..schemas.len())];
            let parent_pk = parent
                .columns
                .iter()
                .find(|c| c.primary_key)
                .map(|c| c.name.clone())
                .unwrap_or_else(|| "id".to_string());
            columns.push(
                Column::new(parent_pk.clone(), DataType::Integer)
                    .references(parent.name.clone(), parent_pk),
            );
        }
        let mut attributes: Vec<&str> = PUBLIC_ATTRIBUTES.to_vec();
        attributes.shuffle(rng);
        let mut type_index = 0usize;
        while columns.len() < profile.columns_per_table {
            let attribute = attributes[(columns.len() + index) % attributes.len()];
            let name = if columns
                .iter()
                .any(|c| c.name.eq_ignore_ascii_case(attribute))
            {
                format!("{attribute}_{}", columns.len())
            } else {
                attribute.to_string()
            };
            let data_type = match attribute {
                "name" | "title" | "city" | "country" | "status" | "category" | "phone"
                | "email" => DataType::Text,
                "year" | "age" | "rank" | "capacity" | "quantity" | "population" => {
                    DataType::Integer
                }
                _ => {
                    type_index += 1;
                    types[type_index % types.len()]
                }
            };
            columns.push(Column::new(name, data_type));
        }
        schemas.push(TableSchema::new(table_name, columns));
    }
    schemas
}

fn enterprise_schemas(profile: &BenchmarkProfile, rng: &mut ChaCha8Rng) -> Vec<TableSchema> {
    let types = data_type_cycle(profile);
    let mut schemas: Vec<TableSchema> = Vec::new();
    for index in 0..profile.schema_tables {
        let subject = ENTERPRISE_SUBJECTS[index % ENTERPRISE_SUBJECTS.len()];
        // Warehouse duplication: later passes over the subject list create the
        // `_ALL` / `_HIST` materialized-view style near-duplicates.
        let table_name = match index / ENTERPRISE_SUBJECTS.len() {
            0 => subject.to_string(),
            1 => format!("{subject}_ALL"),
            2 => format!("{subject}_HIST"),
            n => format!("{subject}_V{n}"),
        };
        let mut columns =
            vec![Column::new(format!("{subject}_KEY"), DataType::Integer).primary_key()];
        // Subject-specific columns.
        let mut suffixes: Vec<&str> = ENTERPRISE_SPECIFIC_SUFFIXES.to_vec();
        suffixes.shuffle(rng);
        let specific = (profile.columns_per_table / 2).max(2);
        for suffix in suffixes.iter().take(specific) {
            if *suffix == "KEY" {
                continue;
            }
            let data_type = match *suffix {
                "NAME" | "TITLE" | "TYPE" | "CATEGORY" | "OWNER" | "GROUP" => DataType::Text,
                "AMOUNT" | "BALANCE" | "RATE" => DataType::Float,
                "COUNT" | "LEVEL" => DataType::Integer,
                "START_DATE" | "END_DATE" => DataType::Date,
                _ => types[rng.gen_range(0..types.len())],
            };
            columns.push(Column::new(format!("{subject}_{suffix}"), data_type));
        }
        // Shared ambiguous columns (the `user_id`-everywhere phenomenon).
        let mut shared: Vec<&str> = ENTERPRISE_SHARED_COLUMNS.to_vec();
        shared.shuffle(rng);
        for column in shared {
            if columns.len() >= profile.columns_per_table {
                break;
            }
            if !rng.gen_bool(profile.duplicate_column_rate.clamp(0.0, 1.0)) {
                continue;
            }
            let data_type = if column.ends_with("DATE") {
                DataType::Date
            } else if column.ends_with("_ID") || column == "FISCAL_YEAR" || column == "ROW_VERSION"
            {
                DataType::Integer
            } else {
                DataType::Text
            };
            columns.push(Column::new(column, data_type));
        }
        // Foreign keys to earlier subjects via their _KEY columns.
        if !schemas.is_empty() && columns.len() < profile.columns_per_table + 2 {
            let parent = &schemas[rng.gen_range(0..schemas.len())];
            if let Some(pk) = parent.columns.iter().find(|c| c.primary_key) {
                if !columns.iter().any(|c| c.name == pk.name) {
                    columns.push(
                        Column::new(pk.name.clone(), DataType::Integer)
                            .references(parent.name.clone(), pk.name.clone()),
                    );
                }
            }
        }
        while columns.len() < profile.columns_per_table {
            columns.push(Column::new(
                format!("{subject}_ATTR_{}", columns.len()),
                types[columns.len() % types.len()],
            ));
        }
        schemas.push(TableSchema::new(table_name, columns));
    }
    schemas
}

fn populate(db: &mut Database, profile: &BenchmarkProfile, rng: &mut ChaCha8Rng) {
    let text_values: &[&str] = if profile.kind.is_enterprise() {
        ENTERPRISE_TEXT_VALUES
    } else {
        PUBLIC_TEXT_VALUES
    };
    let table_names: Vec<String> = db.tables().map(|t| t.schema.name.clone()).collect();
    for table_name in table_names {
        let schema = db.table(&table_name).expect("table exists").schema.clone();
        let rows = profile.rows_per_table;
        let pool_size = ((rows as f64 * profile.distinct_fraction).round() as usize).max(1);
        let mut generated_rows = Vec::with_capacity(rows);
        for row_index in 0..rows {
            let mut row: Vec<Value> = Vec::with_capacity(schema.column_count());
            for column in &schema.columns {
                if column.primary_key {
                    row.push(Value::Int(row_index as i64));
                    continue;
                }
                if column.nullable && rng.gen_bool(profile.null_rate.clamp(0.0, 0.95)) {
                    row.push(Value::Null);
                    continue;
                }
                // Foreign keys draw from a quadratically skewed fan-in:
                // child rows concentrate on low parent keys, so multi-join
                // workloads see the skewed key distributions whose join
                // order genuinely matters (uniform fan-in makes every
                // association tree cost about the same).
                if column.references.is_some() && column.data_type == DataType::Integer {
                    let draw: f64 = rng.gen();
                    row.push(Value::Int((draw * draw * pool_size as f64) as i64));
                    continue;
                }
                let pooled = rng.gen_range(0..pool_size) as i64;
                let value = match column.data_type {
                    DataType::Integer => Value::Int(pooled),
                    DataType::Float => Value::Float(pooled as f64 + 0.5),
                    DataType::Date => Value::Date(18_000 + pooled),
                    DataType::Timestamp => Value::Timestamp(1_600_000_000 + pooled * 3_600),
                    DataType::Boolean => Value::Bool(pooled % 2 == 0),
                    DataType::Text => {
                        let pool_index =
                            (pooled as usize) % text_values.len().min(pool_size.max(1));
                        Value::Text(text_values[pool_index].to_string())
                    }
                };
                row.push(value);
            }
            generated_rows.push(row);
        }
        db.insert_into(&schema.name, generated_rows)
            .expect("generated rows match the generated schema");
    }
}

/// Generate the domain lexicon appropriate for a benchmark (enterprise terms
/// for Beaver, an empty lexicon for public benchmarks).
pub fn lexicon_for(kind: BenchmarkKind) -> DomainLexicon {
    if kind.is_enterprise() {
        DomainLexicon::enterprise()
    } else {
        DomainLexicon::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_storage::profile_database;

    #[test]
    fn generation_is_deterministic() {
        let profile = BenchmarkKind::Spider.profile();
        let a = generate_database(&profile, 11);
        let b = generate_database(&profile, 11);
        assert_eq!(a.schema_ddl(), b.schema_ddl());
        assert_eq!(a.total_rows(), b.total_rows());
        let c = generate_database(&profile, 12);
        assert_ne!(a.schema_ddl(), c.schema_ddl());
    }

    #[test]
    fn table_and_row_counts_match_profile() {
        for kind in BenchmarkKind::all() {
            let profile = kind.profile();
            let db = generate_database(&profile, 3);
            assert_eq!(db.table_count(), profile.schema_tables, "{}", kind.name());
            for table in db.tables() {
                assert_eq!(table.row_count(), profile.rows_per_table);
            }
        }
    }

    #[test]
    fn beaver_schema_shows_enterprise_characteristics() {
        let profile = BenchmarkKind::Beaver.profile();
        let db = generate_database(&profile, 5);
        let stats = profile_database(&db);
        // Sparsity near the configured null rate.
        assert!(stats.sparsity > 0.05, "sparsity = {}", stats.sparsity);
        // Wide tables.
        assert!(stats.avg_columns_per_table >= 10.0);
        // Duplicated near-identical tables exist (the _ALL variants).
        let has_all_variant = db.tables().any(|t| t.schema.name.ends_with("_ALL"));
        assert!(has_all_variant);
        // Shared ambiguous column names appear in several tables.
        let duplicated = db.catalog().tables_with_column("DEPARTMENT_CODE").len()
            + db.catalog().tables_with_column("PERSON_ID").len();
        assert!(duplicated >= 3, "expected shared columns, got {duplicated}");
    }

    #[test]
    fn spider_schema_is_clean() {
        let profile = BenchmarkKind::Spider.profile();
        let db = generate_database(&profile, 5);
        let stats = profile_database(&db);
        assert!(stats.sparsity < 0.01);
        assert!(stats.avg_columns_per_table <= 6.0);
        assert!(stats.uniqueness > BenchmarkKind::Beaver.profile().target_uniqueness);
    }

    #[test]
    fn uniqueness_ordering_matches_paper() {
        // Beaver has the lowest uniqueness (most repeated values).
        let beaver = profile_database(&generate_database(&BenchmarkKind::Beaver.profile(), 9));
        let spider = profile_database(&generate_database(&BenchmarkKind::Spider.profile(), 9));
        let bird = profile_database(&generate_database(&BenchmarkKind::Bird.profile(), 9));
        assert!(beaver.uniqueness < spider.uniqueness);
        assert!(beaver.uniqueness < bird.uniqueness);
    }

    #[test]
    fn generated_databases_are_queryable() {
        let profile = BenchmarkKind::Bird.profile();
        let db = generate_database(&profile, 21);
        let first_table = db.tables().next().unwrap().schema.name.clone();
        let result = db
            .execute_sql(&format!("SELECT COUNT(*) FROM {first_table}"))
            .unwrap();
        assert_eq!(
            result.scalar().and_then(|v| v.as_i64()),
            Some(profile.rows_per_table as i64)
        );
    }

    #[test]
    fn lexicon_only_for_enterprise() {
        assert!(!lexicon_for(BenchmarkKind::Beaver).is_empty());
        assert!(lexicon_for(BenchmarkKind::Spider).is_empty());
    }
}
