//! Naming vocabulary for synthetic schemas and the enterprise domain lexicon.
//!
//! The paper's central difficulty claims rest on two vocabulary phenomena:
//! enterprise schemas reuse the same column names across unrelated tables
//! (ambiguity), and enterprise queries use domain-specific terms ("J-term",
//! Moira lists, cost objects) that models cannot resolve without
//! organization-specific knowledge. This module provides the word pools the
//! generators draw from, plus the [`DomainLexicon`] used to count unresolved
//! domain terms in a query.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Entity nouns used to name tables in public-benchmark-style schemas.
pub const PUBLIC_ENTITIES: &[&str] = &[
    "students",
    "courses",
    "teachers",
    "departments",
    "airports",
    "flights",
    "singers",
    "concerts",
    "stadiums",
    "orchestras",
    "museums",
    "visitors",
    "employees",
    "companies",
    "products",
    "orders",
    "customers",
    "invoices",
    "matches",
    "players",
    "teams",
    "cities",
    "countries",
    "books",
    "authors",
    "publishers",
    "movies",
    "directors",
    "reviews",
];

/// Attribute nouns used to name columns in public-benchmark-style schemas.
pub const PUBLIC_ATTRIBUTES: &[&str] = &[
    "name",
    "age",
    "salary",
    "budget",
    "capacity",
    "year",
    "rank",
    "score",
    "rating",
    "price",
    "quantity",
    "status",
    "city",
    "country",
    "title",
    "grade",
    "gpa",
    "duration",
    "revenue",
    "population",
    "height",
    "weight",
    "category",
    "phone",
    "email",
];

/// Warehouse-style subject areas used to name enterprise tables
/// (the MIT data-warehouse flavour of the Beaver benchmark).
pub const ENTERPRISE_SUBJECTS: &[&str] = &[
    "ACADEMIC_TERMS",
    "MOIRA_LIST",
    "MOIRA_MEMBER",
    "FAC_BUILDING",
    "FAC_ROOM",
    "COST_OBJECT",
    "APPOINTMENT",
    "EMPLOYEE_DIRECTORY",
    "STUDENT_DIRECTORY",
    "COURSE_CATALOG",
    "SUBJECT_OFFERED",
    "DEGREE_AWARD",
    "ADMISSION_APPLICANT",
    "PAYROLL_DETAIL",
    "PURCHASE_ORDER",
    "VENDOR_MASTER",
    "GRADE_DETAIL",
    "LIBRARY_LOAN",
    "PARKING_PERMIT",
    "NETWORK_DEVICE",
    "TELEMETRY_METRIC",
    "SPACE_ALLOCATION",
    "RESEARCH_AWARD",
    "PROPOSAL_BUDGET",
    "TRAVEL_EXPENSE",
    "ASSET_INVENTORY",
];

/// Warehouse-style column stems that get reused across many tables (the
/// duplication the paper calls out with `user_id`-style ambiguity).
pub const ENTERPRISE_SHARED_COLUMNS: &[&str] = &[
    "WAREHOUSE_LOAD_DATE",
    "SOURCE_SYSTEM_CODE",
    "EFFECTIVE_DATE",
    "EXPIRATION_DATE",
    "DEPARTMENT_CODE",
    "DEPARTMENT_NAME",
    "ORG_UNIT_ID",
    "PERSON_ID",
    "MIT_ID",
    "USER_ID",
    "STATUS_CODE",
    "STATUS_DESCRIPTION",
    "FISCAL_YEAR",
    "FISCAL_PERIOD",
    "IS_CURRENT_FLAG",
    "CREATED_BY",
    "MODIFIED_BY",
    "ROW_VERSION",
];

/// Enterprise column stems specific to a subject area (appended to the
/// subject stem, e.g. `MOIRA_LIST_NAME`).
pub const ENTERPRISE_SPECIFIC_SUFFIXES: &[&str] = &[
    "KEY",
    "NAME",
    "TITLE",
    "TYPE",
    "CATEGORY",
    "AMOUNT",
    "COUNT",
    "BALANCE",
    "RATE",
    "START_DATE",
    "END_DATE",
    "OWNER",
    "LEVEL",
    "GROUP",
];

/// One domain-specific term with the explanation an annotator would inject
/// through the feedback loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainTerm {
    /// The term as it appears in SQL literals or questions.
    pub term: String,
    /// The enterprise-specific explanation of the term.
    pub explanation: String,
}

/// The enterprise domain lexicon (MIT-flavoured, matching the paper's
/// examples) used to (a) inject domain terms into generated Beaver queries
/// and (b) decide which terms in a query are "domain-specific".
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainLexicon {
    terms: BTreeMap<String, DomainTerm>,
}

impl DomainLexicon {
    /// The built-in enterprise lexicon.
    pub fn enterprise() -> Self {
        let mut lexicon = DomainLexicon::default();
        let entries = [
            ("J-term", "The one-month January independent activities term in the MIT academic calendar."),
            ("IAP", "Independent Activities Period, the January term."),
            ("Moira", "Moira is MIT's mailing list management system; Moira lists are newsletter/mailing lists."),
            ("cost object", "A cost object is the account-like entity that MIT charges expenses against."),
            ("J-1", "A visa status code used for exchange visitors."),
            ("STREET", "In address tables, STREET_TYPE = 'STREET' restricts to physical street addresses rather than mailing addresses."),
            ("course 6", "Course 6 is the EECS department in MIT's numbering scheme."),
            ("cross-registered", "Students enrolled through another institution's registration agreement."),
            ("UROP", "The Undergraduate Research Opportunities Program."),
            ("DLC", "A Department, Lab, or Center - an MIT organizational unit."),
            ("FY26", "Fiscal year 2026, which runs from July 2025 through June 2026."),
            ("TIP", "The Technology and Policy Program graduate program code."),
        ];
        for (term, explanation) in entries {
            lexicon.insert(DomainTerm {
                term: term.to_string(),
                explanation: explanation.to_string(),
            });
        }
        lexicon
    }

    /// Insert or replace a term.
    pub fn insert(&mut self, term: DomainTerm) {
        self.terms.insert(term.term.to_lowercase(), term);
    }

    /// Number of terms in the lexicon.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the lexicon is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over all terms.
    pub fn terms(&self) -> impl Iterator<Item = &DomainTerm> {
        self.terms.values()
    }

    /// Look up a term (case-insensitive).
    pub fn get(&self, term: &str) -> Option<&DomainTerm> {
        self.terms.get(&term.to_lowercase())
    }

    /// The domain terms appearing in a piece of text (SQL or NL).
    pub fn terms_in(&self, text: &str) -> Vec<&DomainTerm> {
        let lower = text.to_lowercase();
        self.terms
            .values()
            .filter(|t| lower.contains(&t.term.to_lowercase()))
            .collect()
    }

    /// Count the domain terms in `text` that are NOT explained by any of the
    /// provided knowledge notes — the "unresolved" terms that degrade model
    /// fidelity until the feedback loop captures them.
    pub fn unresolved_terms_in(&self, text: &str, knowledge: &[String]) -> usize {
        let knowledge_lower: Vec<String> = knowledge.iter().map(|k| k.to_lowercase()).collect();
        self.terms_in(text)
            .into_iter()
            .filter(|t| {
                let term_lower = t.term.to_lowercase();
                !knowledge_lower.iter().any(|k| k.contains(&term_lower))
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enterprise_lexicon_contains_paper_terms() {
        let lexicon = DomainLexicon::enterprise();
        assert!(lexicon.len() >= 10);
        assert!(lexicon.get("j-term").is_some());
        assert!(lexicon.get("MOIRA").is_some());
        assert!(lexicon.get("unknown term").is_none());
    }

    #[test]
    fn terms_in_finds_terms_case_insensitively() {
        let lexicon = DomainLexicon::enterprise();
        let found =
            lexicon.terms_in("SELECT * FROM ACADEMIC_TERMS WHERE TERM_NAME = 'J-term' -- moira");
        let names: Vec<_> = found.iter().map(|t| t.term.as_str()).collect();
        assert!(names.contains(&"J-term"));
        assert!(names.contains(&"Moira"));
    }

    #[test]
    fn unresolved_terms_drop_when_knowledge_is_injected() {
        let lexicon = DomainLexicon::enterprise();
        let sql = "SELECT * FROM ENROLLMENTS WHERE TERM = 'J-term' AND LIST = 'Moira'";
        assert_eq!(lexicon.unresolved_terms_in(sql, &[]), 2);
        let knowledge = vec!["J-term is the January term at MIT".to_string()];
        assert_eq!(lexicon.unresolved_terms_in(sql, &knowledge), 1);
        let all_knowledge = vec![
            "J-term is the January term at MIT".to_string(),
            "Moira is the mailing list system".to_string(),
        ];
        assert_eq!(lexicon.unresolved_terms_in(sql, &all_knowledge), 0);
    }

    #[test]
    fn word_pools_are_nonempty_and_distinct() {
        assert!(PUBLIC_ENTITIES.len() > 10);
        assert!(PUBLIC_ATTRIBUTES.len() > 10);
        assert!(ENTERPRISE_SUBJECTS.len() > 10);
        assert!(ENTERPRISE_SHARED_COLUMNS.len() > 10);
        let unique: std::collections::HashSet<_> = ENTERPRISE_SUBJECTS.iter().collect();
        assert_eq!(unique.len(), ENTERPRISE_SUBJECTS.len());
    }

    #[test]
    fn insert_overrides_existing() {
        let mut lexicon = DomainLexicon::default();
        assert!(lexicon.is_empty());
        lexicon.insert(DomainTerm {
            term: "X".into(),
            explanation: "first".into(),
        });
        lexicon.insert(DomainTerm {
            term: "x".into(),
            explanation: "second".into(),
        });
        assert_eq!(lexicon.len(), 1);
        assert_eq!(lexicon.get("X").unwrap().explanation, "second");
    }
}
