//! Participant assignment: stratification by expertise and balanced
//! Latin-square counterbalancing of conditions within each stratum (§5.1).

use crate::types::{Condition, Expertise, Participant};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A 3×3 balanced Latin square over the conditions: every condition appears
/// exactly once in every row and every column.
pub fn latin_square() -> [[Condition; 3]; 3] {
    use Condition::*;
    [
        [BenchPress, VanillaLlm, Manual],
        [VanillaLlm, Manual, BenchPress],
        [Manual, BenchPress, VanillaLlm],
    ]
}

/// Assign `n` participants to strata and conditions.
///
/// Participants are first split evenly between the two expertise strata
/// (extras go to the non-advanced stratum, mirroring typical recruitment);
/// within each stratum conditions are assigned by cycling the rows of the
/// balanced Latin square so each condition gets the same number of
/// participants per stratum (up to remainder), with the row order shuffled
/// deterministically from the seed.
pub fn assign_participants(n: usize, seed: u64) -> Vec<Participant> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let square = latin_square();
    let advanced_count = n / 2;
    let mut participants = Vec::with_capacity(n);
    for (stratum_index, (expertise, count)) in [
        (Expertise::Advanced, advanced_count),
        (Expertise::NonAdvanced, n - advanced_count),
    ]
    .into_iter()
    .enumerate()
    {
        // Shuffle which Latin-square row starts the cycle for this stratum.
        let mut row_order: Vec<usize> = (0..3).collect();
        row_order.shuffle(&mut rng);
        for i in 0..count {
            let row = square[row_order[i % 3]];
            let condition = row[(i / 3 + stratum_index) % 3];
            participants.push(Participant {
                id: participants.len(),
                expertise,
                condition,
            });
        }
    }
    participants
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn latin_square_is_balanced() {
        let square = latin_square();
        for row in &square {
            let unique: std::collections::HashSet<_> = row.iter().collect();
            assert_eq!(unique.len(), 3);
        }
        for column in 0..3 {
            let unique: std::collections::HashSet<_> =
                square.iter().map(|row| row[column]).collect();
            assert_eq!(unique.len(), 3);
        }
    }

    #[test]
    fn assignment_covers_all_participants_with_both_strata() {
        let participants = assign_participants(18, 7);
        assert_eq!(participants.len(), 18);
        let advanced = participants
            .iter()
            .filter(|p| p.expertise == Expertise::Advanced)
            .count();
        assert_eq!(advanced, 9);
        // Ids are sequential and unique.
        for (index, participant) in participants.iter().enumerate() {
            assert_eq!(participant.id, index);
        }
    }

    #[test]
    fn conditions_are_counterbalanced_within_strata() {
        let participants = assign_participants(18, 3);
        for expertise in Expertise::all() {
            let mut counts: HashMap<Condition, usize> = HashMap::new();
            for participant in participants.iter().filter(|p| p.expertise == *expertise) {
                *counts.entry(participant.condition).or_insert(0) += 1;
            }
            for condition in Condition::all() {
                assert_eq!(
                    counts.get(condition).copied().unwrap_or(0),
                    3,
                    "each condition gets 3 participants per stratum"
                );
            }
        }
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        assert_eq!(assign_participants(12, 5), assign_participants(12, 5));
        assert_ne!(assign_participants(12, 5), assign_participants(12, 6));
    }

    #[test]
    fn uneven_counts_still_assign_everyone() {
        let participants = assign_participants(7, 1);
        assert_eq!(participants.len(), 7);
        let non_advanced = participants
            .iter()
            .filter(|p| p.expertise == Expertise::NonAdvanced)
            .count();
        assert_eq!(non_advanced, 4);
    }
}
