//! # bp-study — simulated user study for the BenchPress reproduction
//!
//! The paper evaluates BenchPress with a controlled between-subjects study:
//! 18 participants, stratified into advanced / non-advanced SQL users and
//! counterbalanced across three conditions (BenchPress, Manual, Vanilla LLM)
//! with a balanced Latin square, each annotating the same 30 queries sampled
//! from the Beaver and Bird corpora (§5.1). Human participants are not
//! available to a reproduction, so this crate replaces them with behaviour
//! models driven by the same independent variables (condition, expertise)
//! and the same difficulty features (compositional depth, domain terms); the
//! BenchPress condition drives the *real* `bp-core` pipeline end to end.
//!
//! The aggregations reproduce Table 3 (annotation accuracy), Table 4
//! (annotation latency) and Figure 4 (backtranslation clarity).
//!
//! ## Quick example
//!
//! ```
//! use bp_study::{run_study, StudyConfig, Condition};
//!
//! let run = run_study(&StudyConfig::small(1));
//! let accuracy = run.accuracy_table();
//! assert_eq!(accuracy.len(), 3); // Beaver, Bird, Overall
//! assert!(run.mean_coverage(Condition::BenchPress) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod annotator;
pub mod assign;
pub mod runner;
pub mod types;

pub use annotator::{
    annotation_minutes, review_candidates, write_manual, BehaviourParams, HumanResult,
};
pub use assign::{assign_participants, latin_square};
pub use runner::{run_study, ConditionRow, StudyQuery, StudyRun};
pub use types::{AnnotationOutcome, Condition, Expertise, Participant, StudyConfig, StudyDataset};
