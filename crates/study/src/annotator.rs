//! Simulated annotator behaviour.
//!
//! The user-study conclusions the paper reports are relative: BenchPress
//! beats the vanilla-LLM and manual conditions on accuracy and time, and the
//! gap widens on the enterprise (Beaver) queries. The behaviour model here
//! is driven by the same independent variables the paper manipulates —
//! condition and expertise — and by the same difficulty features the paper
//! identifies (compositional depth, domain-specific terminology):
//!
//! * reviewing tool candidates: the participant judges candidate quality with
//!   expertise-dependent noise, picks the best, and then repairs missing
//!   components with a probability that depends on expertise and on whether
//!   the component needs domain knowledge (which BenchPress surfaces through
//!   retrieval, the vanilla LLM does not);
//! * manual writing: each component of the query is described with a
//!   probability that drops with query difficulty and drops sharply for
//!   domain-specific components;
//! * time: reading, reviewing, repairing and writing costs scale with the
//!   number of components and the query difficulty, with per-condition
//!   constants calibrated to the magnitudes in Table 4.

use bp_datasets::DomainLexicon;
use bp_llm::sql2nl::{plan_query, render_plan};
use bp_metrics::{coverage, ComponentCheck, ComponentKind};
use bp_sql::Query;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::types::{Condition, Expertise};

/// Expertise-dependent behaviour parameters.
#[derive(Debug, Clone, Copy)]
pub struct BehaviourParams {
    /// Standard deviation of the noise on perceived candidate quality.
    pub judgement_noise: f64,
    /// Probability of repairing an ordinary missing component during review.
    pub fix_probability: f64,
    /// Probability of repairing a missing component that requires domain
    /// knowledge, *when the interface surfaces that knowledge* (BenchPress).
    pub fix_domain_with_context: f64,
    /// Probability of repairing a domain component without surfaced context
    /// (vanilla LLM / manual).
    pub fix_domain_without_context: f64,
    /// Probability of covering an ordinary component when writing manually.
    pub manual_component_coverage: f64,
    /// Probability of covering a domain component when writing manually.
    pub manual_domain_coverage: f64,
    /// Multiplier on all time costs (advanced users are faster).
    pub speed: f64,
}

impl BehaviourParams {
    /// Parameters for an expertise stratum.
    pub fn for_expertise(expertise: Expertise) -> Self {
        match expertise {
            Expertise::Advanced => BehaviourParams {
                judgement_noise: 0.05,
                fix_probability: 0.85,
                fix_domain_with_context: 0.8,
                fix_domain_without_context: 0.45,
                manual_component_coverage: 0.92,
                manual_domain_coverage: 0.55,
                speed: 0.85,
            },
            Expertise::NonAdvanced => BehaviourParams {
                judgement_noise: 0.12,
                fix_probability: 0.6,
                fix_domain_with_context: 0.6,
                fix_domain_without_context: 0.2,
                manual_component_coverage: 0.8,
                manual_domain_coverage: 0.3,
                speed: 1.15,
            },
        }
    }
}

/// The outcome of a human pass over one query in some condition.
#[derive(Debug, Clone, PartialEq)]
pub struct HumanResult {
    /// The final description text.
    pub description: String,
    /// Number of repair edits the participant made.
    pub fixes: usize,
}

fn component_needs_domain_knowledge(check: &ComponentCheck, lexicon: &DomainLexicon) -> bool {
    check
        .evidence
        .iter()
        .any(|phrase| !lexicon.terms_in(phrase).is_empty())
}

fn repair_sentence(check: &ComponentCheck) -> String {
    let evidence = check
        .evidence
        .first()
        .cloned()
        .unwrap_or_else(|| check.label.clone());
    match check.kind {
        ComponentKind::Table => format!(" The data comes from the {evidence} records."),
        ComponentKind::SelectedColumn => format!(" The output also includes the {evidence}."),
        ComponentKind::Aggregation => format!(" It computes the {evidence}."),
        ComponentKind::Filter => format!(" Only rows where {evidence} are considered."),
        ComponentKind::Grouping => " The results are broken down per group.".to_string(),
        ComponentKind::Ordering => " The results are sorted.".to_string(),
        ComponentKind::Limit => " Only the top rows are returned.".to_string(),
    }
}

/// Review tool-generated candidates: pick the best under noisy judgement,
/// then repair missing components according to the condition and expertise.
pub fn review_candidates(
    query: &Query,
    candidates: &[String],
    condition: Condition,
    params: &BehaviourParams,
    lexicon: &DomainLexicon,
    rng: &mut ChaCha8Rng,
) -> HumanResult {
    assert!(
        !candidates.is_empty(),
        "review requires at least one candidate"
    );
    // Perceived quality = true coverage + judgement noise.
    let mut best_index = 0;
    let mut best_score = f64::MIN;
    for (index, candidate) in candidates.iter().enumerate() {
        let true_score = coverage(query, candidate).score();
        let noise: f64 = (rng.gen::<f64>() - 0.5) * 2.0 * params.judgement_noise;
        let perceived = true_score + noise;
        if perceived > best_score {
            best_score = perceived;
            best_index = index;
        }
    }
    let mut description = candidates[best_index].clone();
    // Repair pass.
    let report = coverage(query, &description);
    let mut fixes = 0;
    for missing in report.missing() {
        let domain = component_needs_domain_knowledge(missing, lexicon);
        let probability = if domain {
            match condition {
                Condition::BenchPress => params.fix_domain_with_context,
                _ => params.fix_domain_without_context,
            }
        } else {
            // BenchPress shows the relevant schema next to the candidates,
            // which makes ordinary omissions easier to spot too.
            match condition {
                Condition::BenchPress => params.fix_probability,
                _ => params.fix_probability * 0.8,
            }
        };
        if rng.gen_bool(probability.clamp(0.0, 1.0)) {
            description.push_str(&repair_sentence(missing));
            fixes += 1;
        }
    }
    HumanResult { description, fixes }
}

/// Write a description from scratch (the manual condition).
pub fn write_manual(
    query: &Query,
    params: &BehaviourParams,
    lexicon: &DomainLexicon,
    rng: &mut ChaCha8Rng,
) -> HumanResult {
    let plan = plan_query(query);
    let analysis = bp_sql::analyze(query);
    let difficulty_penalty = 0.012 * analysis.difficulty_score();
    // Decide component-by-component whether the hand-written description
    // covers it, then realize the text from the full plan and strip the
    // uncovered components by re-checking coverage on a rendered subset.
    // Rendering with per-component inclusion uses the same template machinery
    // as the generator, which keeps the text realistic for the
    // backtranslation study.
    let full_text = render_plan(&plan, 1);
    let report = coverage(query, &full_text);
    let mut description = full_text;
    // For components the writer fails to cover, remove their evidence by
    // appending nothing; instead we rebuild from scratch: simpler and more
    // faithful is to start from an empty sketch and add repair-style
    // sentences for each covered component.
    description.clear();
    description.push_str("This query looks at the data and reports the requested values.");
    for check in &report.components {
        let domain = component_needs_domain_knowledge(check, lexicon);
        let base = if domain {
            params.manual_domain_coverage
        } else {
            params.manual_component_coverage
        };
        let probability = (base - difficulty_penalty).clamp(0.05, 0.99);
        if rng.gen_bool(probability) {
            description.push_str(&repair_sentence(check));
        }
    }
    HumanResult {
        description,
        fixes: 0,
    }
}

/// Time model (minutes) for one query under a condition.
pub fn annotation_minutes(
    condition: Condition,
    params: &BehaviourParams,
    query: &Query,
    units: usize,
    candidates_reviewed: usize,
    fixes: usize,
) -> f64 {
    let analysis = bp_sql::analyze(query);
    let difficulty = analysis.difficulty_score();
    let components = plan_query(query).component_count() as f64;
    let minutes = match condition {
        Condition::BenchPress => {
            0.40 + 0.08 * units as f64
                + 0.07 * candidates_reviewed as f64
                + 0.16 * fixes as f64
                + 0.02 * difficulty
        }
        Condition::VanillaLlm => {
            // Writing the prompt + pasting schema fragments by hand, fewer
            // candidates to compare, more repair effort per fix because the
            // context is not surfaced.
            0.62 + 0.07 * candidates_reviewed as f64 + 0.22 * fixes as f64 + 0.028 * difficulty
        }
        Condition::Manual => 3.0 + 0.2 * components + 0.26 * difficulty,
    };
    minutes * params.speed
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_sql::parse_query;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn lexicon() -> DomainLexicon {
        DomainLexicon::enterprise()
    }

    #[test]
    fn review_picks_the_best_candidate() {
        let query = parse_query("SELECT dept, COUNT(*) FROM students GROUP BY dept").unwrap();
        let candidates = vec![
            "Something vague.".to_string(),
            "For each dept of the students records, report the number of rows.".to_string(),
        ];
        let params = BehaviourParams::for_expertise(Expertise::Advanced);
        let result = review_candidates(
            &query,
            &candidates,
            Condition::BenchPress,
            &params,
            &lexicon(),
            &mut rng(1),
        );
        assert!(result.description.starts_with("For each dept"));
    }

    #[test]
    fn review_repairs_missing_components() {
        let query =
            parse_query("SELECT name FROM students WHERE dept = 'EECS' ORDER BY name").unwrap();
        let candidates = vec!["List the name of students.".to_string()];
        let params = BehaviourParams::for_expertise(Expertise::Advanced);
        let before = coverage(&query, &candidates[0]).score();
        let result = review_candidates(
            &query,
            &candidates,
            Condition::BenchPress,
            &params,
            &lexicon(),
            &mut rng(3),
        );
        let after = coverage(&query, &result.description).score();
        assert!(after >= before);
        assert!(result.fixes > 0);
    }

    #[test]
    fn advanced_writers_cover_more_than_novices_manually() {
        let query = parse_query(
            "SELECT dept, COUNT(DISTINCT id), MAX(gpa) FROM students WHERE term = 'J-term' AND gpa > 3 GROUP BY dept ORDER BY 2 DESC LIMIT 3",
        )
        .unwrap();
        let lexicon = lexicon();
        let sample = |expertise: Expertise| -> f64 {
            let params = BehaviourParams::for_expertise(expertise);
            (0..30)
                .map(|seed| {
                    let result = write_manual(&query, &params, &lexicon, &mut rng(seed));
                    coverage(&query, &result.description).score()
                })
                .sum::<f64>()
                / 30.0
        };
        assert!(sample(Expertise::Advanced) > sample(Expertise::NonAdvanced) + 0.05);
    }

    #[test]
    fn manual_is_much_slower_than_assisted() {
        let query = parse_query(
            "SELECT dept, COUNT(*) FROM students WHERE gpa > 3 GROUP BY dept ORDER BY 2 DESC",
        )
        .unwrap();
        let params = BehaviourParams::for_expertise(Expertise::NonAdvanced);
        let manual = annotation_minutes(Condition::Manual, &params, &query, 1, 0, 0);
        let benchpress = annotation_minutes(Condition::BenchPress, &params, &query, 1, 4, 1);
        let vanilla = annotation_minutes(Condition::VanillaLlm, &params, &query, 1, 2, 2);
        assert!(manual > 3.0 * benchpress);
        assert!(manual > 2.5 * vanilla);
        assert!(benchpress > 0.0 && vanilla > 0.0);
    }

    #[test]
    fn harder_queries_take_longer() {
        let easy = parse_query("SELECT name FROM students").unwrap();
        let hard = parse_query(
            "SELECT s.dept, COUNT(DISTINCT e.course), MAX(e.grade) FROM students s JOIN enrollments e ON s.id = e.student_id WHERE e.term = 'J-term' AND s.gpa > (SELECT AVG(gpa) FROM students) GROUP BY s.dept HAVING COUNT(*) > 2 ORDER BY 2 DESC LIMIT 5",
        )
        .unwrap();
        let params = BehaviourParams::for_expertise(Expertise::Advanced);
        for condition in Condition::all() {
            assert!(
                annotation_minutes(*condition, &params, &hard, 2, 4, 2)
                    > annotation_minutes(*condition, &params, &easy, 1, 4, 0),
                "{condition:?}"
            );
        }
    }

    #[test]
    fn domain_components_are_harder_to_fix_without_context() {
        let query = parse_query(
            "SELECT COUNT(*) FROM enrollments WHERE term = 'J-term' AND course = 'UROP'",
        )
        .unwrap();
        let candidates = vec!["Count the enrollments rows.".to_string()];
        let lexicon = lexicon();
        let params = BehaviourParams::for_expertise(Expertise::NonAdvanced);
        let mean_coverage = |condition: Condition| -> f64 {
            (0..40)
                .map(|seed| {
                    let result = review_candidates(
                        &query,
                        &candidates,
                        condition,
                        &params,
                        &lexicon,
                        &mut rng(seed),
                    );
                    coverage(&query, &result.description).score()
                })
                .sum::<f64>()
                / 40.0
        };
        assert!(mean_coverage(Condition::BenchPress) > mean_coverage(Condition::VanillaLlm));
    }
}
