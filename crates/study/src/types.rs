//! Study design types: conditions, expertise strata, participants, and the
//! per-annotation outcome record.

use serde::{Deserialize, Serialize};

/// The three experimental conditions of the between-subjects study (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Condition {
    /// Group A: the full BenchPress interface (schema context, example
    /// retrieval, four LLM candidates, feedback loop).
    BenchPress,
    /// Group C: a general-purpose LLM without retrieval or task integration.
    VanillaLlm,
    /// Group B: schema files and logs only, no model assistance.
    Manual,
}

impl Condition {
    /// All conditions in the order the paper's tables report them.
    pub fn all() -> &'static [Condition] {
        &[
            Condition::BenchPress,
            Condition::VanillaLlm,
            Condition::Manual,
        ]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Condition::BenchPress => "BenchPress",
            Condition::VanillaLlm => "Vanilla LLM",
            Condition::Manual => "Manual",
        }
    }
}

/// Participant expertise strata from the pre-study questionnaire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expertise {
    /// Advanced SQL users.
    Advanced,
    /// Non-advanced SQL users.
    NonAdvanced,
}

impl Expertise {
    /// Both strata.
    pub fn all() -> &'static [Expertise] {
        &[Expertise::Advanced, Expertise::NonAdvanced]
    }
}

/// One study participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Participant {
    /// Participant number (0-based).
    pub id: usize,
    /// Expertise stratum.
    pub expertise: Expertise,
    /// Assigned condition (between-subjects: exactly one per participant).
    pub condition: Condition,
}

/// Which dataset a study query came from (the study samples from Beaver and
/// Bird, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StudyDataset {
    /// The enterprise (Beaver-like) portion.
    Beaver,
    /// The public (Bird-like) portion.
    Bird,
}

impl StudyDataset {
    /// Both datasets in table order.
    pub fn all() -> &'static [StudyDataset] {
        &[StudyDataset::Beaver, StudyDataset::Bird]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StudyDataset::Beaver => "Beaver",
            StudyDataset::Bird => "Bird",
        }
    }
}

/// The outcome of one participant annotating one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotationOutcome {
    /// Participant id.
    pub participant: usize,
    /// The participant's condition.
    pub condition: Condition,
    /// The participant's expertise.
    pub expertise: Expertise,
    /// Which dataset the query came from.
    pub dataset: StudyDataset,
    /// Index of the query within the study set.
    pub query_index: usize,
    /// The SQL being annotated.
    pub sql: String,
    /// The final description the participant produced.
    pub description: String,
    /// SQL-component coverage score of the description (0..1).
    pub coverage: f64,
    /// Whether the description counts as accurate (coverage ≥ threshold).
    pub accurate: bool,
    /// Time spent on this annotation, in minutes.
    pub minutes: f64,
}

/// Configuration of a study run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of participants (paper: 18).
    pub participants: usize,
    /// Number of Beaver-like queries in the shared query set (paper: 30
    /// total across both datasets).
    pub beaver_queries: usize,
    /// Number of Bird-like queries in the shared query set.
    pub bird_queries: usize,
    /// RNG seed for assignment, behaviour models, and corpus generation.
    pub seed: u64,
    /// The model BenchPress and the vanilla condition use.
    pub model: bp_llm::ModelKind,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            participants: 18,
            beaver_queries: 15,
            bird_queries: 15,
            seed: 2026,
            model: bp_llm::ModelKind::Gpt4o,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for fast tests (fewer participants/queries).
    pub fn small(seed: u64) -> Self {
        StudyConfig {
            participants: 6,
            beaver_queries: 5,
            bird_queries: 5,
            seed,
            model: bp_llm::ModelKind::Gpt4o,
        }
    }

    /// Total number of queries each participant annotates.
    pub fn total_queries(&self) -> usize {
        self.beaver_queries + self.bird_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let config = StudyConfig::default();
        assert_eq!(config.participants, 18);
        assert_eq!(config.total_queries(), 30);
    }

    #[test]
    fn names_and_orders() {
        assert_eq!(Condition::all().len(), 3);
        assert_eq!(Condition::BenchPress.name(), "BenchPress");
        assert_eq!(StudyDataset::all().len(), 2);
        assert_eq!(Expertise::all().len(), 2);
    }

    #[test]
    fn small_config_is_smaller() {
        let small = StudyConfig::small(1);
        assert!(small.participants < StudyConfig::default().participants);
        assert!(small.total_queries() < StudyConfig::default().total_queries());
    }
}
