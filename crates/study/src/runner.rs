//! The study runner: generates the shared query set, runs every participant
//! through their condition, and aggregates the Table 3 / Table 4 / Figure 4
//! results.

use std::collections::HashMap;

use bp_core::{FeedbackAction, Project, TaskConfig};
use bp_datasets::{BenchmarkKind, DomainLexicon, GeneratedBenchmark};
use bp_llm::{generate_candidates, GenerationRequest, ModelKind, PromptBuilder};
use bp_metrics::{coverage, grade_cached, ClarityHistogram, DEFAULT_ACCURACY_THRESHOLD};
use bp_storage::{
    available_threads, batch_map, AccessPathStats, CardinalityStats, Database, OptimizerStats,
    PlanCache, PlanCacheStats, VerifierStats,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::annotator::{annotation_minutes, review_candidates, write_manual, BehaviourParams};
use crate::assign::assign_participants;
use crate::types::{AnnotationOutcome, Condition, Participant, StudyConfig, StudyDataset};

/// One query of the shared study set.
#[derive(Debug, Clone)]
pub struct StudyQuery {
    /// Which dataset the query came from.
    pub dataset: StudyDataset,
    /// Index within the study set.
    pub index: usize,
    /// The SQL text.
    pub sql: String,
}

/// A completed study run.
#[derive(Debug)]
pub struct StudyRun {
    /// The configuration used.
    pub config: StudyConfig,
    /// The assigned participants.
    pub participants: Vec<Participant>,
    /// The shared query set every participant annotated.
    pub queries: Vec<StudyQuery>,
    /// All per-annotation outcomes.
    pub outcomes: Vec<AnnotationOutcome>,
    /// The Beaver-like database (used for backtranslation grading).
    pub beaver_db: Database,
    /// The Bird-like database.
    pub bird_db: Database,
    /// The enterprise lexicon used for the Beaver portion.
    pub lexicon: DomainLexicon,
}

/// One row of the accuracy (Table 3) or latency (Table 4) summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionRow {
    /// Row label: "Beaver", "Bird", or "Overall"/"Total".
    pub label: String,
    /// Value for the BenchPress condition.
    pub benchpress: f64,
    /// Value for the vanilla-LLM condition.
    pub vanilla_llm: f64,
    /// Value for the manual condition.
    pub manual: f64,
}

impl ConditionRow {
    /// Value for a condition.
    pub fn get(&self, condition: Condition) -> f64 {
        match condition {
            Condition::BenchPress => self.benchpress,
            Condition::VanillaLlm => self.vanilla_llm,
            Condition::Manual => self.manual,
        }
    }
}

/// Run the full study.
pub fn run_study(config: &StudyConfig) -> StudyRun {
    // Shared query set: the same queries for every participant (§5.1).
    let beaver =
        GeneratedBenchmark::generate(BenchmarkKind::Beaver, config.beaver_queries, config.seed);
    let bird =
        GeneratedBenchmark::generate(BenchmarkKind::Bird, config.bird_queries, config.seed ^ 0x51);
    let mut queries = Vec::with_capacity(config.total_queries());
    for entry in &beaver.log {
        queries.push(StudyQuery {
            dataset: StudyDataset::Beaver,
            index: queries.len(),
            sql: entry.sql.clone(),
        });
    }
    for entry in &bird.log {
        queries.push(StudyQuery {
            dataset: StudyDataset::Bird,
            index: queries.len(),
            sql: entry.sql.clone(),
        });
    }

    let participants = assign_participants(config.participants, config.seed);
    // Participants are independent by design — each gets a cold-start
    // project and an RNG seeded from (config.seed, participant id) — so
    // the study fans them out across the deterministic batch driver and
    // merges the per-participant outcome lists in participant order. The
    // run is byte-identical at every thread count.
    let per_participant = batch_map(available_threads(), participants.len(), |i| {
        Ok::<_, std::convert::Infallible>(run_participant(
            config,
            &participants[i],
            &queries,
            &beaver,
            &bird,
        ))
    })
    .expect("participant simulation is infallible");
    let mut outcomes = Vec::with_capacity(participants.len() * queries.len());
    for participant_outcomes in per_participant {
        outcomes.extend(participant_outcomes);
    }
    StudyRun {
        config: config.clone(),
        participants,
        queries,
        outcomes,
        beaver_db: beaver.database,
        bird_db: bird.database,
        lexicon: beaver.lexicon,
    }
}

fn empty_lexicon() -> DomainLexicon {
    DomainLexicon::default()
}

fn run_participant(
    config: &StudyConfig,
    participant: &Participant,
    queries: &[StudyQuery],
    beaver: &GeneratedBenchmark,
    bird: &GeneratedBenchmark,
) -> Vec<AnnotationOutcome> {
    let params = BehaviourParams::for_expertise(participant.expertise);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ (participant.id as u64) << 8);
    let mut outcomes = Vec::with_capacity(queries.len());

    // BenchPress participants get a cold-start project per dataset (the
    // knowledge base grows within their session, not across participants).
    let mut benchpress_projects: HashMap<StudyDataset, Project> = HashMap::new();
    if participant.condition == Condition::BenchPress {
        for (dataset, corpus) in [(StudyDataset::Beaver, beaver), (StudyDataset::Bird, bird)] {
            let mut project = Project::new(
                format!("study-p{}-{}", participant.id, dataset.name()),
                TaskConfig::default()
                    .with_model(config.model)
                    .with_seed(config.seed ^ participant.id as u64),
            );
            project.ingest_benchmark(corpus);
            benchpress_projects.insert(dataset, project);
        }
    }

    for query in queries {
        let parsed = bp_sql::parse_query(&query.sql).expect("study queries parse");
        let lexicon = match query.dataset {
            StudyDataset::Beaver => &beaver.lexicon,
            StudyDataset::Bird => &bird.lexicon,
        };
        let (description, minutes) = match participant.condition {
            Condition::BenchPress => {
                let project = benchpress_projects
                    .get_mut(&query.dataset)
                    .expect("project created above");
                // The project log mirrors the corpus log order; map the study
                // query back to its position within its dataset.
                let local_index = project
                    .log()
                    .iter()
                    .position(|item| item.sql == query.sql)
                    .expect("study query comes from the corpus log");
                let draft = project.annotate(local_index).expect("annotation succeeds");
                let human = review_candidates(
                    &parsed,
                    &draft.candidates,
                    Condition::BenchPress,
                    &params,
                    lexicon,
                    &mut rng,
                );
                // Feedback loop: capture domain knowledge the first time an
                // unexplained term shows up, so later prompts improve.
                for term in lexicon.terms_in(&query.sql) {
                    let already_known = project
                        .knowledge()
                        .knowledge_texts()
                        .iter()
                        .any(|note| note.to_lowercase().contains(&term.term.to_lowercase()));
                    if !already_known {
                        project
                            .apply_feedback(
                                local_index,
                                FeedbackAction::AddKnowledge {
                                    topic: term.term.clone(),
                                    note: term.explanation.clone(),
                                },
                            )
                            .expect("knowledge feedback succeeds");
                    }
                }
                let minutes = annotation_minutes(
                    Condition::BenchPress,
                    &params,
                    &parsed,
                    draft.units.len(),
                    draft.candidates.len(),
                    human.fixes,
                );
                project
                    .apply_feedback(local_index, FeedbackAction::Edit(human.description.clone()))
                    .expect("edit feedback succeeds");
                project.finalize(local_index).expect("finalize succeeds");
                (human.description, minutes)
            }
            Condition::VanillaLlm => {
                // A general-purpose LLM without retrieval or schema grounding:
                // bare prompt, and the participant only looks at two outputs.
                let prompt = PromptBuilder::new(query.sql.clone()).build();
                let unresolved = lexicon.terms_in(&query.sql).len();
                let request = GenerationRequest {
                    query: &parsed,
                    prompt: &prompt,
                    unresolved_domain_terms: unresolved,
                    seed: config.seed
                        ^ bp_llm::sql2nl::stable_hash(&query.sql)
                        ^ participant.id as u64,
                };
                let candidates: Vec<String> =
                    generate_candidates(&config.model.profile(), &request)
                        .into_iter()
                        .take(2)
                        .map(|c| c.text)
                        .collect();
                let human = review_candidates(
                    &parsed,
                    &candidates,
                    Condition::VanillaLlm,
                    &params,
                    lexicon,
                    &mut rng,
                );
                let minutes = annotation_minutes(
                    Condition::VanillaLlm,
                    &params,
                    &parsed,
                    1,
                    candidates.len(),
                    human.fixes,
                );
                (human.description, minutes)
            }
            Condition::Manual => {
                let human = write_manual(&parsed, &params, lexicon, &mut rng);
                let minutes =
                    annotation_minutes(Condition::Manual, &params, &parsed, 1, 0, human.fixes);
                (human.description, minutes)
            }
        };
        let score = coverage(&parsed, &description).score();
        outcomes.push(AnnotationOutcome {
            participant: participant.id,
            condition: participant.condition,
            expertise: participant.expertise,
            dataset: query.dataset,
            query_index: query.index,
            sql: query.sql.clone(),
            description,
            coverage: score,
            accurate: score >= DEFAULT_ACCURACY_THRESHOLD,
            minutes,
        });
    }
    let _ = empty_lexicon();
    outcomes
}

impl StudyRun {
    fn outcomes_for(
        &self,
        dataset: Option<StudyDataset>,
        condition: Condition,
    ) -> impl Iterator<Item = &AnnotationOutcome> {
        self.outcomes.iter().filter(move |o| {
            o.condition == condition && dataset.map(|d| o.dataset == d).unwrap_or(true)
        })
    }

    /// Annotation accuracy (percent of accurate annotations) per dataset and
    /// condition — the reproduction of Table 3.
    pub fn accuracy_table(&self) -> Vec<ConditionRow> {
        let accuracy = |dataset: Option<StudyDataset>, condition: Condition| -> f64 {
            let outcomes: Vec<_> = self.outcomes_for(dataset, condition).collect();
            if outcomes.is_empty() {
                return 0.0;
            }
            outcomes.iter().filter(|o| o.accurate).count() as f64 / outcomes.len() as f64 * 100.0
        };
        let mut rows = Vec::new();
        for dataset in StudyDataset::all() {
            rows.push(ConditionRow {
                label: dataset.name().to_string(),
                benchpress: accuracy(Some(*dataset), Condition::BenchPress),
                vanilla_llm: accuracy(Some(*dataset), Condition::VanillaLlm),
                manual: accuracy(Some(*dataset), Condition::Manual),
            });
        }
        rows.push(ConditionRow {
            label: "Overall".to_string(),
            benchpress: accuracy(None, Condition::BenchPress),
            vanilla_llm: accuracy(None, Condition::VanillaLlm),
            manual: accuracy(None, Condition::Manual),
        });
        rows
    }

    /// Average annotation latency in minutes per participant, per dataset and
    /// condition — the reproduction of Table 4. The value for a dataset is
    /// the mean over participants of their *total* time on that dataset's
    /// queries, matching the paper's presentation.
    pub fn latency_table(&self) -> Vec<ConditionRow> {
        let latency = |dataset: Option<StudyDataset>, condition: Condition| -> f64 {
            // BTreeMap, not HashMap: the totals are summed below, and f64
            // addition is order-sensitive in the last ulp — hash order would
            // make the reported mean depend on the process's hash seed.
            let mut per_participant: std::collections::BTreeMap<usize, f64> =
                std::collections::BTreeMap::new();
            for outcome in self.outcomes_for(dataset, condition) {
                *per_participant.entry(outcome.participant).or_insert(0.0) += outcome.minutes;
            }
            if per_participant.is_empty() {
                return 0.0;
            }
            per_participant.values().sum::<f64>() / per_participant.len() as f64
        };
        let mut rows = Vec::new();
        for dataset in StudyDataset::all() {
            rows.push(ConditionRow {
                label: dataset.name().to_string(),
                benchpress: latency(Some(*dataset), Condition::BenchPress),
                vanilla_llm: latency(Some(*dataset), Condition::VanillaLlm),
                manual: latency(Some(*dataset), Condition::Manual),
            });
        }
        rows.push(ConditionRow {
            label: "Total".to_string(),
            benchpress: latency(None, Condition::BenchPress),
            vanilla_llm: latency(None, Condition::VanillaLlm),
            manual: latency(None, Condition::Manual),
        });
        rows
    }

    /// Backtranslation clarity histograms per condition — the reproduction of
    /// Figure 4. Every final description is backtranslated by a vanilla model
    /// and graded with the 5-level rubric against its original query,
    /// executing on the corresponding generated database.
    ///
    /// Each outcome's backtranslation + grading is independent, so the loop
    /// fans out across the deterministic batch driver; grades are recorded
    /// into the histograms in outcome order, making the result identical at
    /// every thread count.
    pub fn clarity_histograms(
        &self,
        backtranslation_model: ModelKind,
    ) -> HashMap<Condition, ClarityHistogram> {
        self.clarity_histograms_detailed(backtranslation_model).0
    }

    /// [`StudyRun::clarity_histograms`] plus the plan-cache and
    /// access-path counters the grading sweep accumulated. Grading executes
    /// every original query and every regenerated query through one shared
    /// [`PlanCache`] keyed on a snapshot per database pinned up front — a
    /// corpus whose descriptions backtranslate to a handful of distinct SQL
    /// texts compiles each text once, not once per participant — and the
    /// counters quantify exactly that reuse. The histograms never depend on
    /// the cache (only compile frequency does); the hit/miss *split* can
    /// shift between runs when workers race on a cold key, but `hits +
    /// misses` is always two per graded outcome whose regeneration parses
    /// (original + regenerated), plus one for each that does not parse.
    ///
    /// The [`AccessPathStats`] tally how many table accesses across the
    /// sweep the compiler answered from a secondary index versus a full
    /// scan (per execution, cached plans included) — fast-path coverage of
    /// the grading workload, observed rather than inferred.
    ///
    /// The [`VerifierStats`] tally the always-on plan verifier's coverage:
    /// every distinct compile the sweep performed was statically verified
    /// (counted once per compile, not per execution), and `violations`
    /// staying at 0 is the observable proof that no miscompiled plan
    /// reached execution.
    ///
    /// The [`OptimizerStats`] tally the cost-based optimizer's coverage
    /// per compile — join spines whose association the cost model chose vs
    /// join nodes compiled in syntactic order — and the
    /// [`CardinalityStats`] tally per execution how many output rows the
    /// cost model predicted vs how many actually came back, the study-side
    /// view of estimator drift.
    pub fn clarity_histograms_detailed(
        &self,
        backtranslation_model: ModelKind,
    ) -> (
        HashMap<Condition, ClarityHistogram>,
        PlanCacheStats,
        AccessPathStats,
        VerifierStats,
        OptimizerStats,
        CardinalityStats,
    ) {
        let beaver_translator =
            bp_llm::Backtranslator::new(self.beaver_db.catalog(), backtranslation_model.profile());
        let bird_translator =
            bp_llm::Backtranslator::new(self.bird_db.catalog(), backtranslation_model.profile());
        let beaver_snapshot = self.beaver_db.snapshot();
        let bird_snapshot = self.bird_db.snapshot();
        // One cache per dataset: the cache is keyed by SQL text, and the two
        // corpora reuse table names, so sharing one would make the same text
        // ping-pong between snapshots as invalidations.
        let beaver_cache = PlanCache::with_default_capacity();
        let bird_cache = PlanCache::with_default_capacity();
        let graded = batch_map(available_threads(), self.outcomes.len(), |i| {
            let outcome = &self.outcomes[i];
            let (translator, snapshot, cache) = match outcome.dataset {
                StudyDataset::Beaver => (&beaver_translator, &beaver_snapshot, &beaver_cache),
                StudyDataset::Bird => (&bird_translator, &bird_snapshot, &bird_cache),
            };
            let regenerated = translator.backtranslate(&outcome.description);
            let graded = grade_cached(&outcome.sql, &regenerated, snapshot, cache)
                .expect("study queries parse");
            Ok::<_, std::convert::Infallible>((outcome.condition, graded.level))
        })
        .expect("backtranslation grading is infallible");
        let mut histograms: HashMap<Condition, ClarityHistogram> = HashMap::new();
        for (condition, level) in graded {
            histograms.entry(condition).or_default().record(level);
        }
        let beaver_stats = beaver_cache.stats();
        let bird_stats = bird_cache.stats();
        let stats = PlanCacheStats {
            hits: beaver_stats.hits + bird_stats.hits,
            misses: beaver_stats.misses + bird_stats.misses,
            invalidations: beaver_stats.invalidations + bird_stats.invalidations,
        };
        let beaver_access = beaver_cache.access_stats();
        let bird_access = bird_cache.access_stats();
        let access = AccessPathStats {
            index_scan: beaver_access.index_scan + bird_access.index_scan,
            full_scan: beaver_access.full_scan + bird_access.full_scan,
        };
        let beaver_verified = beaver_cache.verifier_stats();
        let bird_verified = bird_cache.verifier_stats();
        let verified = VerifierStats {
            plans_verified: beaver_verified.plans_verified + bird_verified.plans_verified,
            violations: beaver_verified.violations + bird_verified.violations,
        };
        let beaver_opt = beaver_cache.optimizer_stats();
        let bird_opt = bird_cache.optimizer_stats();
        let optimizer = OptimizerStats {
            cost_based: beaver_opt.cost_based + bird_opt.cost_based,
            syntactic_fallback: beaver_opt.syntactic_fallback + bird_opt.syntactic_fallback,
        };
        let beaver_card = beaver_cache.cardinality_stats();
        let bird_card = bird_cache.cardinality_stats();
        let cardinality = CardinalityStats {
            estimated_executions: beaver_card.estimated_executions + bird_card.estimated_executions,
            estimated_rows: beaver_card.estimated_rows + bird_card.estimated_rows,
            actual_rows: beaver_card.actual_rows + bird_card.actual_rows,
        };
        (histograms, stats, access, verified, optimizer, cardinality)
    }

    /// Mean coverage per condition (a finer-grained quality view than the
    /// accurate/inaccurate split of Table 3).
    pub fn mean_coverage(&self, condition: Condition) -> f64 {
        let outcomes: Vec<_> = self.outcomes_for(None, condition).collect();
        if outcomes.is_empty() {
            return 0.0;
        }
        outcomes.iter().map(|o| o.coverage).sum::<f64>() / outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run() -> StudyRun {
        run_study(&StudyConfig::small(7))
    }

    #[test]
    fn study_produces_outcomes_for_every_participant_and_query() {
        let run = small_run();
        assert_eq!(run.participants.len(), 6);
        assert_eq!(run.queries.len(), 10);
        assert_eq!(run.outcomes.len(), 60);
        // Every condition is represented.
        for condition in Condition::all() {
            assert!(run.outcomes.iter().any(|o| o.condition == *condition));
        }
    }

    #[test]
    fn accuracy_and_latency_tables_have_expected_shape() {
        let run = small_run();
        let accuracy = run.accuracy_table();
        let latency = run.latency_table();
        assert_eq!(accuracy.len(), 3);
        assert_eq!(latency.len(), 3);
        assert_eq!(accuracy[0].label, "Beaver");
        assert_eq!(accuracy[2].label, "Overall");
        assert_eq!(latency[2].label, "Total");
        for row in &accuracy {
            for condition in Condition::all() {
                let value = row.get(*condition);
                assert!((0.0..=100.0).contains(&value));
            }
        }
        for row in &latency {
            assert!(row.manual > 0.0);
        }
    }

    #[test]
    fn benchpress_beats_baselines_on_the_enterprise_portion() {
        let run = run_study(&StudyConfig {
            participants: 12,
            beaver_queries: 8,
            bird_queries: 4,
            seed: 99,
            model: ModelKind::Gpt4o,
        });
        let accuracy = run.accuracy_table();
        let beaver_row = &accuracy[0];
        assert!(
            beaver_row.benchpress >= beaver_row.vanilla_llm,
            "BenchPress {} should be at least Vanilla {}",
            beaver_row.benchpress,
            beaver_row.vanilla_llm
        );
        assert!(
            beaver_row.benchpress > beaver_row.manual,
            "BenchPress {} should beat Manual {}",
            beaver_row.benchpress,
            beaver_row.manual
        );
        let latency = run.latency_table();
        let total = &latency[2];
        assert!(total.manual > 2.0 * total.benchpress);
        assert!(total.manual > 2.0 * total.vanilla_llm);
    }

    #[test]
    fn clarity_histograms_cover_all_annotations() {
        let run = small_run();
        let histograms = run.clarity_histograms(ModelKind::Gpt4o);
        let total: usize = histograms.values().map(|h| h.total()).sum();
        assert_eq!(total, run.outcomes.len());
        // BenchPress should not be worse than Manual on mean clarity.
        let benchpress = histograms[&Condition::BenchPress].mean_level();
        let manual = histograms[&Condition::Manual].mean_level();
        assert!(
            benchpress + 0.3 >= manual,
            "BenchPress clarity {benchpress} vs manual {manual}"
        );
    }

    #[test]
    fn detailed_clarity_histograms_agree_and_report_cache_reuse() {
        let run = small_run();
        let plain = run.clarity_histograms(ModelKind::Gpt4o);
        let (detailed, stats, access, verified, optimizer, cardinality) =
            run.clarity_histograms_detailed(ModelKind::Gpt4o);
        assert_eq!(plain, detailed);
        // Every graded outcome touches the cache at least once (regenerated
        // side), at most twice (plus the original).
        assert!(stats.hits + stats.misses >= run.outcomes.len() as u64);
        assert!(stats.hits + stats.misses <= 2 * run.outcomes.len() as u64);
        // 6 participants annotate the same 10 queries: plans must be reused.
        assert!(stats.hits > 0, "repeated SQL texts must hit the cache");
        assert_eq!(stats.invalidations, 0, "nothing writes during grading");
        // Every successful execution chose an access path; the sweep as a
        // whole must have scanned *something*.
        assert!(
            access.index_scan + access.full_scan > 0,
            "graded executions must tally access paths"
        );
        // Every distinct compile was statically verified (once per compile,
        // so verified ≤ misses), and none of them was a miscompile.
        assert!(
            verified.plans_verified > 0,
            "graded compiles must tally verifier coverage"
        );
        assert!(verified.plans_verified <= stats.misses);
        assert_eq!(verified.violations, 0, "no plan may fail verification");
        // Optimizer coverage is per compile too: every compiled join node
        // either went through the cost model or fell back, so the combined
        // tally is bounded by the compile count times plan size — and the
        // cardinality counters saw every successful estimated execution.
        assert!(
            optimizer.cost_based + optimizer.syntactic_fallback <= 4 * verified.plans_verified,
            "optimizer tallies are per compile: {optimizer:?}"
        );
        assert!(
            cardinality.estimated_executions > 0,
            "graded executions must tally estimated-vs-actual rows"
        );
        assert!(cardinality.estimated_rows > 0 || cardinality.actual_rows > 0);
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_study(&StudyConfig::small(3));
        let b = run_study(&StudyConfig::small(3));
        assert_eq!(a.outcomes, b.outcomes);
    }
}
