//! Query decomposition (paper step 3.5).
//!
//! For nested SQL queries, BenchPress rewrites the query into a series of
//! Common Table Expressions (CTEs), breaking it down into semantically
//! logical subqueries so each piece can be annotated independently (see
//! Figure 3 of the paper). This module performs that rewrite: every derived
//! table, `IN`/scalar/`EXISTS` subquery, and pre-existing CTE becomes an
//! [`AnnotationUnit`], and the outer query is rewritten to reference the
//! extracted CTEs.
//!
//! The rewrite is an *annotation aid*: for uncorrelated subqueries it is
//! semantics-preserving, while correlated subqueries are left in place
//! (hoisting them would change meaning) and simply reported as additional
//! units without rewriting.

use crate::analyzer::analyze;
use crate::ast::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The role an annotation unit plays in a decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitRole {
    /// An extracted (or pre-existing) CTE.
    Cte,
    /// The final outer query that consumes the CTEs.
    Final,
}

/// One independently-annotatable piece of a decomposed query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotationUnit {
    /// CTE name, or `"FINAL"` for the outer query.
    pub name: String,
    /// The unit's query.
    pub query: Query,
    /// Canonical SQL text of the unit.
    pub sql: String,
    /// Role of the unit.
    pub role: UnitRole,
}

/// Result of decomposing a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// Annotation units in evaluation order (CTEs first, final query last).
    pub units: Vec<AnnotationUnit>,
    /// The rewritten query expressed with a `WITH` clause.
    pub rewritten: Query,
    /// Whether any rewriting actually happened (false for flat queries).
    pub was_decomposed: bool,
}

impl Decomposition {
    /// Units that are CTEs (everything except the final query).
    pub fn cte_units(&self) -> impl Iterator<Item = &AnnotationUnit> {
        self.units.iter().filter(|u| u.role == UnitRole::Cte)
    }

    /// The final (outer) unit.
    pub fn final_unit(&self) -> &AnnotationUnit {
        self.units
            .iter()
            .rev()
            .find(|u| u.role == UnitRole::Final)
            .expect("decomposition always has a final unit")
    }
}

/// Decide whether a query is "nested enough" that the optional decomposition
/// step should run. The paper applies decomposition to nested queries only.
pub fn should_decompose(query: &Query) -> bool {
    let analysis = analyze(query);
    analysis.is_nested()
}

struct Extractor {
    ctes: Vec<Cte>,
    counter: usize,
    /// Aliases visible from enclosing scopes; used for a conservative
    /// correlation check (a subquery referencing an outer alias is correlated
    /// and therefore not hoisted).
    outer_scopes: Vec<BTreeSet<String>>,
}

impl Extractor {
    fn new() -> Self {
        Extractor {
            ctes: Vec::new(),
            counter: 0,
            outer_scopes: Vec::new(),
        }
    }

    fn fresh_name(&mut self, hint: Option<&str>) -> String {
        self.counter += 1;
        match hint {
            Some(h) if !h.is_empty() => format!("{}_{}", sanitize_name(h), self.counter),
            _ => format!("STEP_{}", self.counter),
        }
    }

    fn is_correlated(&self, query: &Query) -> bool {
        if self.outer_scopes.is_empty() {
            return false;
        }
        let outer: BTreeSet<&String> = self.outer_scopes.iter().flatten().collect();
        let mut local = BTreeSet::new();
        collect_local_scope_names(query, &mut local);
        let mut qualifiers = BTreeSet::new();
        collect_qualifiers(query, &mut qualifiers);
        qualifiers
            .iter()
            .any(|q| outer.contains(q) && !local.contains(q))
    }

    fn extract_query(&mut self, query: &Query, hint: Option<&str>) -> ObjectName {
        let name = self.fresh_name(hint);
        self.ctes.push(Cte {
            name: Ident::new(name.clone()),
            query: query.clone(),
            comment: None,
        });
        ObjectName(vec![Ident::new(name)])
    }

    fn rewrite_query(&mut self, query: &mut Query) {
        // Hoist existing CTEs first so they keep their original names and order.
        if let Some(with) = query.with.take() {
            for cte in with.ctes {
                self.ctes.push(cte);
            }
        }
        let mut scope = BTreeSet::new();
        collect_local_scope_names(query, &mut scope);
        self.outer_scopes.push(scope);
        self.rewrite_set_expr(&mut query.body);
        for item in &mut query.order_by {
            self.rewrite_expr(&mut item.expr);
        }
        self.outer_scopes.pop();
    }

    fn rewrite_set_expr(&mut self, body: &mut SetExpr) {
        match body {
            SetExpr::Select(select) => self.rewrite_select(select),
            SetExpr::Query(query) => self.rewrite_query(query),
            SetExpr::SetOperation { left, right, .. } => {
                self.rewrite_set_expr(left);
                self.rewrite_set_expr(right);
            }
        }
    }

    fn rewrite_select(&mut self, select: &mut Select) {
        for twj in &mut select.from {
            self.rewrite_table_factor(&mut twj.relation);
            for join in &mut twj.joins {
                self.rewrite_table_factor(&mut join.relation);
                if let JoinConstraint::On(expr) = &mut join.constraint {
                    self.rewrite_expr(expr);
                }
            }
        }
        for item in &mut select.projection {
            if let SelectItem::Expr { expr, .. } = item {
                self.rewrite_expr(expr);
            }
        }
        if let Some(selection) = &mut select.selection {
            self.rewrite_expr(selection);
        }
        for expr in &mut select.group_by {
            self.rewrite_expr(expr);
        }
        if let Some(having) = &mut select.having {
            self.rewrite_expr(having);
        }
    }

    fn rewrite_table_factor(&mut self, factor: &mut TableFactor) {
        if let TableFactor::Derived { subquery, alias } = factor {
            if self.is_correlated(subquery) {
                // Correlated derived tables are unusual; leave untouched.
                self.rewrite_query(subquery);
                return;
            }
            let mut inner = (**subquery).clone();
            self.rewrite_query(&mut inner);
            let hint = alias.as_ref().map(|a| a.value.as_str());
            let name = self.extract_query(&inner, hint);
            *factor = TableFactor::Table {
                name,
                alias: alias.clone(),
            };
        }
    }

    fn rewrite_subquery_expr(&mut self, subquery: &mut Box<Query>, hint: &str) -> bool {
        if self.is_correlated(subquery) {
            // Recurse so inner uncorrelated pieces still get extracted, but
            // keep the correlated subquery in place.
            self.rewrite_query(subquery);
            return false;
        }
        let mut inner = (**subquery).clone();
        self.rewrite_query(&mut inner);
        let name = self.extract_query(&inner, Some(hint));
        let replacement = Query::from_select(Select {
            distinct: false,
            projection: vec![SelectItem::Wildcard],
            from: vec![TableWithJoins::table(name, None)],
            selection: None,
            group_by: Vec::new(),
            having: None,
        });
        **subquery = replacement;
        true
    }

    fn rewrite_expr(&mut self, expr: &mut Expr) {
        match expr {
            Expr::Subquery(subquery) => {
                self.rewrite_subquery_expr(subquery, "SCALAR");
            }
            Expr::InSubquery { expr, subquery, .. } => {
                self.rewrite_expr(expr);
                self.rewrite_subquery_expr(subquery, "MEMBERS");
            }
            Expr::Exists { subquery, .. } => {
                self.rewrite_subquery_expr(subquery, "EXISTS_CHECK");
            }
            Expr::BinaryOp { left, right, .. } => {
                self.rewrite_expr(left);
                self.rewrite_expr(right);
            }
            Expr::UnaryOp { expr, .. } => self.rewrite_expr(expr),
            Expr::Function { args, .. } => {
                for arg in args {
                    self.rewrite_expr(arg);
                }
            }
            Expr::Case {
                operand,
                conditions,
                else_result,
            } => {
                if let Some(op) = operand {
                    self.rewrite_expr(op);
                }
                for (c, r) in conditions {
                    self.rewrite_expr(c);
                    self.rewrite_expr(r);
                }
                if let Some(e) = else_result {
                    self.rewrite_expr(e);
                }
            }
            Expr::InList { expr, list, .. } => {
                self.rewrite_expr(expr);
                for item in list {
                    self.rewrite_expr(item);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                self.rewrite_expr(expr);
                self.rewrite_expr(low);
                self.rewrite_expr(high);
            }
            Expr::IsNull { expr, .. } => self.rewrite_expr(expr),
            Expr::Like { expr, pattern, .. } => {
                self.rewrite_expr(expr);
                self.rewrite_expr(pattern);
            }
            Expr::Cast { expr, .. } => self.rewrite_expr(expr),
            Expr::Nested(inner) => self.rewrite_expr(inner),
            Expr::Identifier(_)
            | Expr::CompoundIdentifier(_)
            | Expr::Literal(_)
            | Expr::Wildcard => {}
        }
    }
}

fn sanitize_name(hint: &str) -> String {
    let cleaned: String = hint
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c.to_ascii_uppercase()
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("T_{cleaned}")
    } else {
        cleaned
    }
}

/// Collect relation names/aliases that a query itself brings into scope.
fn collect_local_scope_names(query: &Query, names: &mut BTreeSet<String>) {
    if let Some(with) = &query.with {
        for cte in &with.ctes {
            names.insert(cte.name.normalized());
        }
    }
    collect_scope_from_set_expr(&query.body, names);
}

fn collect_scope_from_set_expr(body: &SetExpr, names: &mut BTreeSet<String>) {
    match body {
        SetExpr::Select(select) => {
            for twj in &select.from {
                if let Some(n) = twj.relation.scope_name() {
                    names.insert(n);
                }
                for join in &twj.joins {
                    if let Some(n) = join.relation.scope_name() {
                        names.insert(n);
                    }
                }
            }
        }
        SetExpr::Query(query) => collect_local_scope_names(query, names),
        SetExpr::SetOperation { left, right, .. } => {
            collect_scope_from_set_expr(left, names);
            collect_scope_from_set_expr(right, names);
        }
    }
}

/// Collect all qualifiers used in compound identifiers anywhere in the query.
///
/// Column references and nested subqueries are discovered with the shared
/// analyzer helpers ([`collect_column_refs`][crate::analyzer::collect_column_refs],
/// [`expr_subqueries`][crate::analyzer::expr_subqueries]) so the correlation
/// check here and the storage planner's predicate analysis agree on what a
/// qualified column reference is.
fn collect_qualifiers(query: &Query, qualifiers: &mut BTreeSet<String>) {
    fn walk_expr(expr: &Expr, qualifiers: &mut BTreeSet<String>) {
        let mut refs = Vec::new();
        crate::analyzer::collect_column_refs(expr, &mut refs);
        for r in &refs {
            if let Some(q) = r.normalized_qualifier() {
                qualifiers.insert(q);
            }
        }
        for subquery in crate::analyzer::expr_subqueries(expr) {
            collect_qualifiers(subquery, qualifiers);
        }
    }

    fn walk_set_expr(body: &SetExpr, qualifiers: &mut BTreeSet<String>) {
        match body {
            SetExpr::Select(select) => {
                for item in &select.projection {
                    if let SelectItem::Expr { expr, .. } = item {
                        walk_expr(expr, qualifiers);
                    }
                }
                for twj in &select.from {
                    if let TableFactor::Derived { subquery, .. } = &twj.relation {
                        collect_qualifiers(subquery, qualifiers);
                    }
                    for join in &twj.joins {
                        if let TableFactor::Derived { subquery, .. } = &join.relation {
                            collect_qualifiers(subquery, qualifiers);
                        }
                        if let JoinConstraint::On(expr) = &join.constraint {
                            walk_expr(expr, qualifiers);
                        }
                    }
                }
                if let Some(selection) = &select.selection {
                    walk_expr(selection, qualifiers);
                }
                for expr in &select.group_by {
                    walk_expr(expr, qualifiers);
                }
                if let Some(having) = &select.having {
                    walk_expr(having, qualifiers);
                }
            }
            SetExpr::Query(q) => collect_qualifiers(q, qualifiers),
            SetExpr::SetOperation { left, right, .. } => {
                walk_set_expr(left, qualifiers);
                walk_set_expr(right, qualifiers);
            }
        }
    }

    if let Some(with) = &query.with {
        for cte in &with.ctes {
            collect_qualifiers(&cte.query, qualifiers);
        }
    }
    walk_set_expr(&query.body, qualifiers);
    for item in &query.order_by {
        walk_expr(&item.expr, qualifiers);
    }
}

/// Decompose a nested query into annotation units.
///
/// Flat queries produce a single `FINAL` unit and `was_decomposed == false`.
pub fn decompose(query: &Query) -> Decomposition {
    let mut rewritten = query.clone();
    let mut extractor = Extractor::new();
    extractor.rewrite_query(&mut rewritten);

    let was_decomposed = !extractor.ctes.is_empty();
    if was_decomposed {
        rewritten.with = Some(With {
            ctes: extractor.ctes.clone(),
        });
    }

    let mut units: Vec<AnnotationUnit> = extractor
        .ctes
        .iter()
        .map(|cte| AnnotationUnit {
            name: cte.name.value.clone(),
            sql: cte.query.to_string(),
            query: cte.query.clone(),
            role: UnitRole::Cte,
        })
        .collect();

    // The final unit is the outer query *without* the WITH clause so its
    // annotation focuses on the final combination step.
    let mut final_query = rewritten.clone();
    final_query.with = None;
    units.push(AnnotationUnit {
        name: "FINAL".to_string(),
        sql: final_query.to_string(),
        query: final_query,
        role: UnitRole::Final,
    });

    Decomposition {
        units,
        rewritten,
        was_decomposed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn flat_query_is_not_decomposed() {
        let q = parse_query("SELECT a FROM t WHERE a > 1").unwrap();
        assert!(!should_decompose(&q));
        let d = decompose(&q);
        assert!(!d.was_decomposed);
        assert_eq!(d.units.len(), 1);
        assert_eq!(d.units[0].role, UnitRole::Final);
    }

    #[test]
    fn derived_table_becomes_cte() {
        let q = parse_query("SELECT x FROM (SELECT a AS x FROM t) AS d WHERE x > 0").unwrap();
        assert!(should_decompose(&q));
        let d = decompose(&q);
        assert!(d.was_decomposed);
        assert_eq!(d.cte_units().count(), 1);
        let cte = d.cte_units().next().unwrap();
        assert!(cte.name.starts_with("D_"));
        // Rewritten query must reference the CTE by name, not contain a derived table.
        let rendered = d.rewritten.to_string();
        assert!(rendered.starts_with("WITH "));
        assert!(rendered.contains(&cte.name));
    }

    #[test]
    fn in_subquery_becomes_cte() {
        let q = parse_query(
            "SELECT name FROM students WHERE id IN (SELECT student_id FROM enrollments WHERE term = 'J-term')",
        )
        .unwrap();
        let d = decompose(&q);
        assert!(d.was_decomposed);
        assert_eq!(d.cte_units().count(), 1);
        let rendered = d.rewritten.to_string();
        assert!(rendered.contains("IN (SELECT * FROM MEMBERS_1)"));
    }

    #[test]
    fn existing_ctes_are_preserved_as_units() {
        let q = parse_query(
            "WITH DistinctLists AS (SELECT list, COUNT(DISTINCT member) AS n FROM moira GROUP BY list) SELECT MAX(n) FROM DistinctLists",
        )
        .unwrap();
        let d = decompose(&q);
        assert!(d.was_decomposed);
        let names: Vec<_> = d.cte_units().map(|u| u.name.clone()).collect();
        assert_eq!(names, vec!["DistinctLists"]);
        assert_eq!(d.final_unit().name, "FINAL");
    }

    #[test]
    fn nested_subqueries_extract_inner_first() {
        let q = parse_query(
            "SELECT * FROM (SELECT a FROM (SELECT a FROM t WHERE a > 0) AS inner1) AS outer1",
        )
        .unwrap();
        let d = decompose(&q);
        assert_eq!(d.cte_units().count(), 2);
        // Inner must be declared before outer so the WITH chain is valid.
        let names: Vec<_> = d.cte_units().map(|u| u.name.clone()).collect();
        assert!(names[0].starts_with("INNER1"));
        assert!(names[1].starts_with("OUTER1"));
        let outer_sql = &d.cte_units().nth(1).unwrap().sql;
        assert!(outer_sql.contains(&names[0]));
    }

    #[test]
    fn correlated_subquery_is_not_hoisted() {
        let q = parse_query(
            "SELECT * FROM emp e WHERE salary > (SELECT AVG(salary) FROM emp x WHERE x.dept = e.dept)",
        )
        .unwrap();
        let d = decompose(&q);
        // The correlated scalar subquery stays inline.
        assert!(!d.was_decomposed);
        assert!(d.rewritten.to_string().contains("e.dept"));
    }

    #[test]
    fn uncorrelated_scalar_subquery_is_hoisted() {
        let q =
            parse_query("SELECT * FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)").unwrap();
        let d = decompose(&q);
        assert!(d.was_decomposed);
        assert_eq!(d.cte_units().count(), 1);
        assert!(d.cte_units().next().unwrap().name.starts_with("SCALAR"));
    }

    #[test]
    fn rewritten_query_reparses() {
        let q = parse_query(
            "SELECT COUNT(DISTINCT dl.name), (SELECT MAX(n) FROM (SELECT list, COUNT(*) AS n FROM moira GROUP BY list) AS y) FROM (SELECT DISTINCT name FROM moira WHERE name LIKE 'B%') AS dl",
        )
        .unwrap();
        let d = decompose(&q);
        assert!(d.was_decomposed);
        let rendered = d.rewritten.to_string();
        parse_query(&rendered).expect("rewritten query must re-parse");
    }

    #[test]
    fn final_unit_has_no_with_clause() {
        let q = parse_query("SELECT x FROM (SELECT a AS x FROM t) AS d").unwrap();
        let d = decompose(&q);
        assert!(d.final_unit().query.with.is_none());
        assert!(!d.final_unit().sql.starts_with("WITH"));
    }

    #[test]
    fn sanitize_name_handles_odd_aliases() {
        assert_eq!(sanitize_name("weird alias!"), "WEIRD_ALIAS_");
        assert_eq!(sanitize_name("1abc"), "T_1ABC");
    }
}
