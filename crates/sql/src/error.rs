//! Error types for SQL lexing and parsing.

use std::fmt;

/// Errors produced while tokenizing or parsing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The lexer encountered a character it does not understand.
    Lexer {
        /// Human-readable message.
        message: String,
        /// Byte offset of the offending position in the input.
        position: usize,
    },
    /// The parser encountered an unexpected token.
    Parser {
        /// Human-readable message.
        message: String,
        /// Token index at which the error occurred.
        position: usize,
    },
    /// The statement is syntactically valid but uses a construct this
    /// dialect subset does not support.
    Unsupported(String),
}

impl SqlError {
    /// Construct a lexer error.
    pub fn lexer(message: impl Into<String>, position: usize) -> Self {
        SqlError::Lexer {
            message: message.into(),
            position,
        }
    }

    /// Construct a parser error.
    pub fn parser(message: impl Into<String>, position: usize) -> Self {
        SqlError::Parser {
            message: message.into(),
            position,
        }
    }

    /// Construct an "unsupported construct" error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        SqlError::Unsupported(message.into())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lexer { message, position } => {
                write!(f, "lexer error at byte {position}: {message}")
            }
            SqlError::Parser { message, position } => {
                write!(f, "parse error at token {position}: {message}")
            }
            SqlError::Unsupported(message) => write!(f, "unsupported SQL construct: {message}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience result alias used throughout the crate.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lexer_error() {
        let e = SqlError::lexer("bad char '#'", 12);
        assert_eq!(e.to_string(), "lexer error at byte 12: bad char '#'");
    }

    #[test]
    fn display_parser_error() {
        let e = SqlError::parser("expected FROM", 3);
        assert_eq!(e.to_string(), "parse error at token 3: expected FROM");
    }

    #[test]
    fn display_unsupported() {
        let e = SqlError::unsupported("LATERAL joins");
        assert!(e.to_string().contains("LATERAL joins"));
    }
}
