//! # bp-sql — SQL toolkit for the BenchPress reproduction
//!
//! This crate is the SQL substrate used throughout the BenchPress
//! reproduction: a lexer, recursive-descent parser, AST, pretty-printer,
//! structural analyzer, and the CTE decomposition / recomposition rewrites
//! that implement steps 3.5 and 5.5 of the paper's annotation loop.
//!
//! It plays the role `sqlglot` plays in the original system: extracting the
//! tables and columns a query touches (for schema retrieval), measuring
//! query complexity (Table 1 of the paper), and rewriting nested queries
//! into annotatable CTE units (Figure 3).
//!
//! ## Quick example
//!
//! ```
//! use bp_sql::{parse_query, analyze, decompose};
//!
//! let query = parse_query(
//!     "SELECT name FROM students WHERE id IN (SELECT student_id FROM enrollments)",
//! ).unwrap();
//! let analysis = analyze(&query);
//! assert_eq!(analysis.table_count(), 2);
//! assert!(analysis.is_nested());
//!
//! let decomposition = decompose(&query);
//! assert!(decomposition.was_decomposed);
//! ```

#![warn(missing_docs)]

pub mod analyzer;
pub mod ast;
pub mod decompose;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod recompose;
pub mod token;

pub use analyzer::{
    analyze, analyze_query_text, collect_column_refs, column_ref, equi_join_keys, expr_subqueries,
    split_conjuncts, ColumnRef, JoinKeyExtraction, QueryAnalysis,
};
pub use ast::{
    BinaryOperator, ColumnDef, CreateTable, Cte, DataType, Expr, Ident, Join, JoinConstraint,
    JoinOperator, Literal, ObjectName, OrderByExpr, Query, Select, SelectItem, SetExpr,
    SetOperator, Statement, TableFactor, TableWithJoins, UnaryOperator, With,
};
pub use decompose::{decompose, should_decompose, AnnotationUnit, Decomposition, UnitRole};
pub use error::{SqlError, SqlResult};
pub use lexer::tokenize;
pub use parser::{parse_query, parse_statement, parse_statements, Parser};
pub use recompose::{recompose, RecomposeError, UnitDescription};
pub use token::{Keyword, Token};
