//! Abstract syntax tree for the SQL subset used throughout BenchPress.
//!
//! The AST intentionally mirrors the shape of well-known SQL ASTs
//! (sqlparser-rs, sqlglot) but only covers the constructs that appear in
//! text-to-SQL workloads: `SELECT` queries with CTEs, joins, subqueries,
//! aggregation, set operations, and `CREATE TABLE` statements used for
//! schema ingestion.

use serde::{Deserialize, Serialize};

/// An identifier such as a table, column, or alias name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ident {
    /// The identifier text as written (without quotes).
    pub value: String,
    /// Whether the identifier was double-quoted in the source.
    pub quoted: bool,
}

impl Ident {
    /// Create an unquoted identifier.
    pub fn new(value: impl Into<String>) -> Self {
        Ident {
            value: value.into(),
            quoted: false,
        }
    }

    /// Create a quoted identifier.
    pub fn quoted(value: impl Into<String>) -> Self {
        Ident {
            value: value.into(),
            quoted: true,
        }
    }

    /// Case-normalized form used for name resolution (unquoted identifiers
    /// are case-insensitive in SQL).
    pub fn normalized(&self) -> String {
        if self.quoted {
            self.value.clone()
        } else {
            self.value.to_ascii_uppercase()
        }
    }
}

/// A possibly-qualified name, e.g. `warehouse.FAC_BUILDING`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectName(pub Vec<Ident>);

impl ObjectName {
    /// Build an object name from dot-separated parts.
    pub fn new(parts: &[&str]) -> Self {
        ObjectName(parts.iter().map(|p| Ident::new(*p)).collect())
    }

    /// The final (unqualified) component of the name.
    pub fn base(&self) -> &Ident {
        self.0.last().expect("object name has at least one part")
    }

    /// Dot-joined normalized name used as a map key.
    pub fn normalized(&self) -> String {
        self.0
            .iter()
            .map(|i| i.normalized())
            .collect::<Vec<_>>()
            .join(".")
    }
}

/// Top-level SQL statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// A `SELECT`/`WITH` query.
    Query(Query),
    /// A `CREATE TABLE` definition (used for schema ingestion only).
    CreateTable(CreateTable),
}

impl Statement {
    /// Returns the inner query if this statement is a query.
    pub fn as_query(&self) -> Option<&Query> {
        match self {
            Statement::Query(q) => Some(q),
            Statement::CreateTable(_) => None,
        }
    }
}

/// A `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateTable {
    /// Table name.
    pub name: ObjectName,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
}

/// One column in a `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: Ident,
    /// Declared data type.
    pub data_type: DataType,
    /// Whether the column carries a `PRIMARY KEY` constraint.
    pub primary_key: bool,
    /// Whether the column is nullable (`NOT NULL` absent).
    pub nullable: bool,
    /// Referenced table/column when a `REFERENCES` clause is present.
    pub references: Option<(ObjectName, Ident)>,
}

/// SQL data types recognized by the schema subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Any integer type (`INT`, `INTEGER`, `BIGINT`, `SMALLINT`).
    Integer,
    /// Floating point or `NUMBER`/`DECIMAL` types.
    Float,
    /// Character types (`VARCHAR`, `CHAR`, `TEXT`).
    Text,
    /// Boolean.
    Boolean,
    /// Calendar date.
    Date,
    /// Timestamp.
    Timestamp,
}

impl DataType {
    /// Canonical SQL spelling used by the pretty-printer.
    pub fn as_sql(&self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "NUMBER",
            DataType::Text => "VARCHAR",
            DataType::Boolean => "BOOLEAN",
            DataType::Date => "DATE",
            DataType::Timestamp => "TIMESTAMP",
        }
    }
}

/// A full query: optional `WITH` clause, body, ordering and limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Optional `WITH` clause.
    pub with: Option<With>,
    /// The set-expression body (a bare select or set operation).
    pub body: SetExpr,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByExpr>,
    /// `LIMIT` expression.
    pub limit: Option<Expr>,
    /// `OFFSET` expression.
    pub offset: Option<Expr>,
}

impl Query {
    /// Wrap a bare select into a query with no WITH/ORDER BY/LIMIT.
    pub fn from_select(select: Select) -> Self {
        Query {
            with: None,
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// The top-level select, if the body is a plain select.
    pub fn top_select(&self) -> Option<&Select> {
        match &self.body {
            SetExpr::Select(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to the top-level select.
    pub fn top_select_mut(&mut self) -> Option<&mut Select> {
        match &mut self.body {
            SetExpr::Select(s) => Some(s),
            _ => None,
        }
    }
}

/// `WITH` clause holding one or more common table expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct With {
    /// The CTEs in declaration order.
    pub ctes: Vec<Cte>,
}

/// A single common table expression: `name AS (query)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cte {
    /// CTE alias/name.
    pub name: Ident,
    /// The query the CTE evaluates.
    pub query: Query,
    /// Optional comment attached during decomposition (semantic note).
    pub comment: Option<String>,
}

/// Query body: either a select, a parenthesized query, or a set operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetExpr {
    /// Plain `SELECT ...`.
    Select(Box<Select>),
    /// Parenthesized sub-query used as a set operand.
    Query(Box<Query>),
    /// `UNION` / `INTERSECT` / `EXCEPT`.
    SetOperation {
        /// The operator.
        op: SetOperator,
        /// Whether `ALL` was specified.
        all: bool,
        /// Left operand.
        left: Box<SetExpr>,
        /// Right operand.
        right: Box<SetExpr>,
    },
}

/// Set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SetOperator {
    /// `UNION`
    Union,
    /// `INTERSECT`
    Intersect,
    /// `EXCEPT`
    Except,
}

impl SetOperator {
    /// Keyword spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOperator::Union => "UNION",
            SetOperator::Intersect => "INTERSECT",
            SetOperator::Except => "EXCEPT",
        }
    }
}

/// A `SELECT` clause with its FROM/WHERE/GROUP BY/HAVING parts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// FROM clause (empty for `SELECT 1`-style queries).
    pub from: Vec<TableWithJoins>,
    /// WHERE predicate.
    pub selection: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
}

impl Select {
    /// An empty select with nothing projected; useful as a builder seed.
    pub fn empty() -> Self {
        Select {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// One item in a projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// Expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<Ident>,
    },
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(ObjectName),
}

impl SelectItem {
    /// Convenience constructor for an un-aliased expression item.
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }

    /// Convenience constructor for an aliased expression item.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr,
            alias: Some(Ident::new(alias)),
        }
    }
}

/// A FROM-clause element: a base relation plus trailing joins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableWithJoins {
    /// The left-most relation.
    pub relation: TableFactor,
    /// Joins applied left-to-right.
    pub joins: Vec<Join>,
}

impl TableWithJoins {
    /// A bare table reference with no joins.
    pub fn table(name: ObjectName, alias: Option<Ident>) -> Self {
        TableWithJoins {
            relation: TableFactor::Table { name, alias },
            joins: Vec::new(),
        }
    }
}

/// A relation appearing in FROM: a named table or a derived subquery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableFactor {
    /// Base table (or CTE) reference.
    Table {
        /// Table name, possibly qualified.
        name: ObjectName,
        /// Optional alias.
        alias: Option<Ident>,
    },
    /// Derived table `(SELECT ...) alias`.
    Derived {
        /// The subquery.
        subquery: Box<Query>,
        /// Optional alias (usually required by dialects, optional here).
        alias: Option<Ident>,
    },
}

impl TableFactor {
    /// The name used to refer to this relation in scope (alias if present).
    pub fn scope_name(&self) -> Option<String> {
        match self {
            TableFactor::Table { name, alias } => Some(
                alias
                    .as_ref()
                    .map(|a| a.normalized())
                    .unwrap_or_else(|| name.base().normalized()),
            ),
            TableFactor::Derived { alias, .. } => alias.as_ref().map(|a| a.normalized()),
        }
    }
}

/// A join between two relations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    /// The right-hand relation.
    pub relation: TableFactor,
    /// Join type.
    pub operator: JoinOperator,
    /// Join condition.
    pub constraint: JoinConstraint,
}

/// Supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinOperator {
    /// `INNER JOIN` (or bare `JOIN`).
    Inner,
    /// `LEFT [OUTER] JOIN`.
    LeftOuter,
    /// `RIGHT [OUTER] JOIN`.
    RightOuter,
    /// `FULL [OUTER] JOIN`.
    FullOuter,
    /// `CROSS JOIN`.
    Cross,
}

impl JoinOperator {
    /// SQL spelling of the join keyword sequence.
    pub fn as_sql(&self) -> &'static str {
        match self {
            JoinOperator::Inner => "JOIN",
            JoinOperator::LeftOuter => "LEFT JOIN",
            JoinOperator::RightOuter => "RIGHT JOIN",
            JoinOperator::FullOuter => "FULL JOIN",
            JoinOperator::Cross => "CROSS JOIN",
        }
    }
}

/// Join condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JoinConstraint {
    /// `ON <expr>`.
    On(Expr),
    /// No condition (cross join / comma join).
    None,
}

/// An `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByExpr {
    /// Sort key expression.
    pub expr: Expr,
    /// Ascending (`true`) or descending (`false`).
    pub asc: bool,
}

/// Scalar literal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Numeric literal preserved as text.
    Number(String),
    /// String literal.
    String(String),
    /// Boolean literal.
    Boolean(bool),
    /// `NULL`.
    Null,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOperator {
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Multiply,
    /// `/`
    Divide,
    /// `%`
    Modulo,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `||`
    Concat,
}

impl BinaryOperator {
    /// SQL spelling.
    pub fn as_sql(&self) -> &'static str {
        match self {
            BinaryOperator::Plus => "+",
            BinaryOperator::Minus => "-",
            BinaryOperator::Multiply => "*",
            BinaryOperator::Divide => "/",
            BinaryOperator::Modulo => "%",
            BinaryOperator::Eq => "=",
            BinaryOperator::NotEq => "<>",
            BinaryOperator::Lt => "<",
            BinaryOperator::LtEq => "<=",
            BinaryOperator::Gt => ">",
            BinaryOperator::GtEq => ">=",
            BinaryOperator::And => "AND",
            BinaryOperator::Or => "OR",
            BinaryOperator::Concat => "||",
        }
    }

    /// Whether the operator is a comparison (used by the analyzer).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOperator::Eq
                | BinaryOperator::NotEq
                | BinaryOperator::Lt
                | BinaryOperator::LtEq
                | BinaryOperator::Gt
                | BinaryOperator::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOperator {
    /// `NOT`
    Not,
    /// Unary `-`
    Minus,
    /// Unary `+`
    Plus,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Bare column reference `a`.
    Identifier(Ident),
    /// Qualified column reference `t.a` (or deeper).
    CompoundIdentifier(Vec<Ident>),
    /// Literal value.
    Literal(Literal),
    /// Binary operation.
    BinaryOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOperator,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    UnaryOp {
        /// Operator.
        op: UnaryOperator,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call, including aggregates.
    Function {
        /// Function name.
        name: Ident,
        /// Arguments (a single `Expr::Wildcard` for `COUNT(*)`).
        args: Vec<Expr>,
        /// `DISTINCT` inside the call, e.g. `COUNT(DISTINCT x)`.
        distinct: bool,
    },
    /// `CASE WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// Optional operand for simple CASE.
        operand: Option<Box<Expr>>,
        /// WHEN/THEN pairs.
        conditions: Vec<(Expr, Expr)>,
        /// ELSE result.
        else_result: Option<Box<Expr>>,
    },
    /// `EXISTS (subquery)`.
    Exists {
        /// The subquery.
        subquery: Box<Query>,
        /// Whether the EXISTS is negated.
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)`.
    Subquery(Box<Query>),
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        subquery: Box<Query>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr [NOT] IN (list...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List items.
        list: Vec<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// Negation flag.
        negated: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Expression being cast.
        expr: Box<Expr>,
        /// Target type.
        data_type: DataType,
    },
    /// Parenthesized expression.
    Nested(Box<Expr>),
    /// `*` used inside `COUNT(*)`.
    Wildcard,
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Identifier(Ident::new(name))
    }

    /// Qualified column reference helper (`table.column`).
    pub fn qcol(table: impl Into<String>, column: impl Into<String>) -> Self {
        Expr::CompoundIdentifier(vec![Ident::new(table), Ident::new(column)])
    }

    /// Numeric literal helper.
    pub fn number(n: impl ToString) -> Self {
        Expr::Literal(Literal::Number(n.to_string()))
    }

    /// String literal helper.
    pub fn string(s: impl Into<String>) -> Self {
        Expr::Literal(Literal::String(s.into()))
    }

    /// Build `left op right`.
    pub fn binary(left: Expr, op: BinaryOperator, right: Expr) -> Self {
        Expr::BinaryOp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Build an equality comparison.
    pub fn eq(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinaryOperator::Eq, right)
    }

    /// Conjunction of two expressions.
    pub fn and(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinaryOperator::And, right)
    }

    /// Aggregate/function call helper.
    pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Self {
        Expr::Function {
            name: Ident::new(name),
            args,
            distinct: false,
        }
    }

    /// `COUNT(*)` helper.
    pub fn count_star() -> Self {
        Expr::Function {
            name: Ident::new("COUNT"),
            args: vec![Expr::Wildcard],
            distinct: false,
        }
    }

    /// Whether this expression node is an aggregate function call.
    pub fn is_aggregate_call(&self) -> bool {
        match self {
            Expr::Function { name, .. } => {
                matches!(
                    name.value.to_ascii_uppercase().as_str(),
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
                )
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_normalization() {
        assert_eq!(Ident::new("foo").normalized(), "FOO");
        assert_eq!(Ident::quoted("Foo Bar").normalized(), "Foo Bar");
    }

    #[test]
    fn object_name_base_and_key() {
        let name = ObjectName::new(&["warehouse", "fac_building"]);
        assert_eq!(name.base().value, "fac_building");
        assert_eq!(name.normalized(), "WAREHOUSE.FAC_BUILDING");
    }

    #[test]
    fn expr_builders() {
        let e = Expr::and(
            Expr::eq(Expr::qcol("t", "a"), Expr::number(1)),
            Expr::col("b"),
        );
        match e {
            Expr::BinaryOp { op, .. } => assert_eq!(op, BinaryOperator::And),
            _ => panic!("expected binary op"),
        }
    }

    #[test]
    fn aggregate_detection() {
        assert!(Expr::count_star().is_aggregate_call());
        assert!(Expr::func("sum", vec![Expr::col("x")]).is_aggregate_call());
        assert!(!Expr::func("UPPER", vec![Expr::col("x")]).is_aggregate_call());
        assert!(!Expr::col("count").is_aggregate_call());
    }

    #[test]
    fn scope_name_prefers_alias() {
        let t = TableFactor::Table {
            name: ObjectName::new(&["ACADEMIC_TERMS_ALL"]),
            alias: Some(Ident::new("a")),
        };
        assert_eq!(t.scope_name(), Some("A".to_string()));
        let t2 = TableFactor::Table {
            name: ObjectName::new(&["ACADEMIC_TERMS_ALL"]),
            alias: None,
        };
        assert_eq!(t2.scope_name(), Some("ACADEMIC_TERMS_ALL".to_string()));
    }

    #[test]
    fn query_from_select_roundtrip() {
        let q = Query::from_select(Select::empty());
        assert!(q.top_select().is_some());
        assert!(q.with.is_none());
        assert!(q.order_by.is_empty());
    }

    #[test]
    fn statement_as_query() {
        let q = Statement::Query(Query::from_select(Select::empty()));
        assert!(q.as_query().is_some());
        let c = Statement::CreateTable(CreateTable {
            name: ObjectName::new(&["T"]),
            columns: vec![],
        });
        assert!(c.as_query().is_none());
    }
}
