//! Recomposition of per-unit natural language descriptions (paper step 5.5).
//!
//! After a nested query has been decomposed into CTE units and each unit has
//! been annotated, BenchPress merges the sub-descriptions back into a single
//! coherent explanation of the original query. This module implements that
//! deterministic merge.

use crate::decompose::{Decomposition, UnitRole};
use serde::{Deserialize, Serialize};

/// A natural language description of one annotation unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitDescription {
    /// Unit name (CTE name or `"FINAL"`).
    pub unit_name: String,
    /// The natural language description produced for the unit.
    pub description: String,
}

impl UnitDescription {
    /// Convenience constructor.
    pub fn new(unit_name: impl Into<String>, description: impl Into<String>) -> Self {
        UnitDescription {
            unit_name: unit_name.into(),
            description: description.into(),
        }
    }
}

/// Errors produced during recomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecomposeError {
    /// A unit in the decomposition has no matching description.
    MissingDescription(String),
    /// The description list names a unit that is not in the decomposition.
    UnknownUnit(String),
}

impl std::fmt::Display for RecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecomposeError::MissingDescription(u) => {
                write!(f, "no description provided for unit '{u}'")
            }
            RecomposeError::UnknownUnit(u) => {
                write!(f, "description references unknown unit '{u}'")
            }
        }
    }
}

impl std::error::Error for RecomposeError {}

fn humanize_step(description: &str) -> String {
    let trimmed = description.trim().trim_end_matches('.');
    if trimmed.is_empty() {
        return String::new();
    }
    let mut chars = trimmed.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Merge per-unit descriptions into a single explanation of the whole query.
///
/// The merged text walks the CTE steps in order ("First, ...", "Then, ...")
/// and closes with the final query's description ("Finally, ..."), naming
/// each intermediate result so the final sentence can refer back to them.
/// For a single-unit (non-decomposed) query the final description is returned
/// unchanged.
pub fn recompose(
    decomposition: &Decomposition,
    descriptions: &[UnitDescription],
) -> Result<String, RecomposeError> {
    // Validate that every provided description maps to a unit.
    for d in descriptions {
        if !decomposition.units.iter().any(|u| u.name == d.unit_name) {
            return Err(RecomposeError::UnknownUnit(d.unit_name.clone()));
        }
    }
    let lookup = |name: &str| -> Result<&str, RecomposeError> {
        descriptions
            .iter()
            .find(|d| d.unit_name == name)
            .map(|d| d.description.as_str())
            .ok_or_else(|| RecomposeError::MissingDescription(name.to_string()))
    };

    let cte_units: Vec<_> = decomposition
        .units
        .iter()
        .filter(|u| u.role == UnitRole::Cte)
        .collect();
    let final_unit = decomposition.final_unit();
    let final_description = lookup(&final_unit.name)?;

    if cte_units.is_empty() {
        return Ok(final_description.trim().to_string());
    }

    let mut sentences = Vec::with_capacity(cte_units.len() + 1);
    for (index, unit) in cte_units.iter().enumerate() {
        let description = lookup(&unit.name)?;
        let opener = if index == 0 { "First" } else { "Then" };
        sentences.push(format!(
            "{opener}, {} (call this result {}).",
            humanize_step(description),
            unit.name
        ));
    }
    sentences.push(format!("Finally, {}.", humanize_step(final_description)));
    Ok(sentences.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::parser::parse_query;

    fn decomp(sql: &str) -> Decomposition {
        decompose(&parse_query(sql).unwrap())
    }

    #[test]
    fn single_unit_passthrough() {
        let d = decomp("SELECT a FROM t");
        let out = recompose(
            &d,
            &[UnitDescription::new("FINAL", "List every value of a in t.")],
        )
        .unwrap();
        assert_eq!(out, "List every value of a in t.");
    }

    #[test]
    fn merges_cte_steps_in_order() {
        let d = decomp(
            "WITH DistinctLists AS (SELECT list, COUNT(DISTINCT member) AS n FROM moira GROUP BY list), Top AS (SELECT * FROM DistinctLists ORDER BY n DESC LIMIT 1) SELECT * FROM Top",
        );
        let out = recompose(
            &d,
            &[
                UnitDescription::new(
                    "DistinctLists",
                    "For each Moira list, compute the number of distinct members.",
                ),
                UnitDescription::new("Top", "Keep only the list with the most members."),
                UnitDescription::new("FINAL", "Report that list."),
            ],
        )
        .unwrap();
        assert!(out.starts_with("First, for each Moira list"));
        assert!(out.contains("(call this result DistinctLists)."));
        assert!(out.contains("Then, keep only the list"));
        assert!(out.ends_with("Finally, report that list."));
        // Order: DistinctLists sentence before Top sentence before Finally.
        let i1 = out.find("DistinctLists").unwrap();
        let i2 = out.find("Then,").unwrap();
        let i3 = out.find("Finally,").unwrap();
        assert!(i1 < i2 && i2 < i3);
    }

    #[test]
    fn missing_description_is_error() {
        let d = decomp("SELECT x FROM (SELECT a AS x FROM t) AS d");
        let err = recompose(&d, &[UnitDescription::new("FINAL", "whatever")]).unwrap_err();
        assert!(matches!(err, RecomposeError::MissingDescription(_)));
    }

    #[test]
    fn unknown_unit_is_error() {
        let d = decomp("SELECT a FROM t");
        let err = recompose(
            &d,
            &[
                UnitDescription::new("FINAL", "ok"),
                UnitDescription::new("NOPE", "extra"),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RecomposeError::UnknownUnit(n) if n == "NOPE"));
    }

    #[test]
    fn humanize_lowercases_and_strips_period() {
        assert_eq!(humanize_step("Count the rows."), "count the rows");
        assert_eq!(humanize_step("  X  "), "x");
        assert_eq!(humanize_step(""), "");
    }
}
