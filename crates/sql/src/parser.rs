//! Recursive-descent parser for the BenchPress SQL subset.
//!
//! The parser consumes the token stream produced by [`crate::lexer`] and
//! builds the AST defined in [`crate::ast`]. It supports `SELECT` queries
//! with CTEs, joins, subqueries, set operations, aggregation and the usual
//! scalar expression grammar, plus `CREATE TABLE` for schema ingestion.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::tokenize;
use crate::token::{Keyword, Token};

/// Parser over a pre-tokenized SQL statement.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Create a parser directly from tokens.
    pub fn from_tokens(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    /// Tokenize and create a parser for the SQL text.
    pub fn new(sql: &str) -> SqlResult<Self> {
        Ok(Parser::from_tokens(tokenize(sql)?))
    }

    // ---------------------------------------------------------------------
    // Token helpers
    // ---------------------------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: Keyword) -> bool {
        matches!(self.peek(), Some(t) if t.is_keyword(kw))
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> SqlResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    fn eat_token(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, tok: &Token) -> SqlResult<()> {
        if self.eat_token(tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{tok}'")))
        }
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        let mut message = message.into();
        match self.peek() {
            Some(t) => message.push_str(&format!(", found '{t}'")),
            None => message.push_str(", found end of input"),
        }
        SqlError::parser(message, self.pos)
    }

    fn parse_identifier(&mut self) -> SqlResult<Ident> {
        match self.bump() {
            Some(Token::Identifier { value, quoted }) => Ok(Ident { value, quoted }),
            // Type/function keywords may be used as identifiers in enterprise
            // schemas (e.g. a column literally named DATE or KEY).
            Some(Token::Keyword(kw))
                if matches!(
                    kw,
                    Keyword::Date
                        | Keyword::Key
                        | Keyword::Number
                        | Keyword::Text
                        | Keyword::Timestamp
                        | Keyword::Count
                        | Keyword::Min
                        | Keyword::Max
                ) =>
            {
                Ok(Ident::new(kw.as_str()))
            }
            Some(other) => {
                self.pos -= 1;
                Err(self.error(format!("expected identifier, found '{other}'")))
            }
            None => Err(self.error("expected identifier")),
        }
    }

    fn parse_object_name(&mut self) -> SqlResult<ObjectName> {
        let mut parts = vec![self.parse_identifier()?];
        // Do not consume the dot of a trailing `.*` (qualified wildcard).
        while self.peek() == Some(&Token::Dot) && self.peek_at(1) != Some(&Token::Star) {
            self.pos += 1;
            parts.push(self.parse_identifier()?);
        }
        Ok(ObjectName(parts))
    }

    // ---------------------------------------------------------------------
    // Statements
    // ---------------------------------------------------------------------

    /// Parse a single SQL statement from text.
    pub fn parse_statement_text(sql: &str) -> SqlResult<Statement> {
        let mut parser = Parser::new(sql)?;
        let stmt = parser.parse_statement()?;
        parser.eat_token(&Token::Semicolon);
        if let Some(t) = parser.peek() {
            return Err(parser.error(format!("unexpected trailing token '{t}'")));
        }
        Ok(stmt)
    }

    /// Parse all semicolon-separated statements from text.
    pub fn parse_statements_text(sql: &str) -> SqlResult<Vec<Statement>> {
        let mut parser = Parser::new(sql)?;
        let mut stmts = Vec::new();
        loop {
            while parser.eat_token(&Token::Semicolon) {}
            if parser.peek().is_none() {
                break;
            }
            stmts.push(parser.parse_statement()?);
        }
        Ok(stmts)
    }

    /// Parse one statement starting at the current position.
    pub fn parse_statement(&mut self) -> SqlResult<Statement> {
        if self.at_keyword(Keyword::Create) {
            Ok(Statement::CreateTable(self.parse_create_table()?))
        } else {
            Ok(Statement::Query(self.parse_query()?))
        }
    }

    fn parse_create_table(&mut self) -> SqlResult<CreateTable> {
        self.expect_keyword(Keyword::Create)?;
        self.expect_keyword(Keyword::Table)?;
        let name = self.parse_object_name()?;
        self.expect_token(&Token::LeftParen)?;
        let mut columns = Vec::new();
        loop {
            // Skip table-level constraints such as PRIMARY KEY (a, b) or
            // FOREIGN KEY (...) REFERENCES ... — only column shapes matter
            // for annotation context.
            if self.at_keyword(Keyword::Primary)
                || self.at_keyword(Keyword::Foreign)
                || self.at_keyword(Keyword::Unique)
            {
                self.skip_balanced_until_comma_or_rparen();
            } else {
                columns.push(self.parse_column_def()?);
            }
            if self.eat_token(&Token::Comma) {
                continue;
            }
            self.expect_token(&Token::RightParen)?;
            break;
        }
        Ok(CreateTable { name, columns })
    }

    fn skip_balanced_until_comma_or_rparen(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Some(Token::LeftParen) => {
                    depth += 1;
                    self.pos += 1;
                }
                Some(Token::RightParen) => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.pos += 1;
                }
                Some(Token::Comma) if depth == 0 => return,
                Some(_) => self.pos += 1,
                None => return,
            }
        }
    }

    fn parse_column_def(&mut self) -> SqlResult<ColumnDef> {
        let name = self.parse_identifier()?;
        let data_type = self.parse_data_type()?;
        let mut primary_key = false;
        let mut nullable = true;
        let mut references = None;
        loop {
            if self.eat_keyword(Keyword::Primary) {
                self.expect_keyword(Keyword::Key)?;
                primary_key = true;
                nullable = false;
            } else if self.eat_keyword(Keyword::Not) {
                self.expect_keyword(Keyword::Null)?;
                nullable = false;
            } else if self.eat_keyword(Keyword::Null) {
                nullable = true;
            } else if self.eat_keyword(Keyword::Unique) {
                // uniqueness is not modelled per-column; ignore.
            } else if self.eat_keyword(Keyword::References) {
                let table = self.parse_object_name()?;
                self.expect_token(&Token::LeftParen)?;
                let column = self.parse_identifier()?;
                self.expect_token(&Token::RightParen)?;
                references = Some((table, column));
            } else {
                break;
            }
        }
        Ok(ColumnDef {
            name,
            data_type,
            primary_key,
            nullable,
            references,
        })
    }

    fn parse_data_type(&mut self) -> SqlResult<DataType> {
        let kw = match self.bump() {
            Some(Token::Keyword(kw)) => kw,
            Some(other) => {
                self.pos -= 1;
                return Err(self.error(format!("expected data type, found '{other}'")));
            }
            None => return Err(self.error("expected data type")),
        };
        let dt = match kw {
            Keyword::Int | Keyword::Integer | Keyword::Bigint | Keyword::Smallint => {
                DataType::Integer
            }
            Keyword::Number
            | Keyword::Decimal
            | Keyword::Numeric
            | Keyword::Float
            | Keyword::Real => DataType::Float,
            Keyword::Double => {
                self.eat_keyword(Keyword::Precision);
                DataType::Float
            }
            Keyword::Varchar | Keyword::Varchar2 | Keyword::Char | Keyword::Text => DataType::Text,
            Keyword::Date => DataType::Date,
            Keyword::Timestamp => DataType::Timestamp,
            Keyword::Boolean => DataType::Boolean,
            other => {
                return Err(self.error(format!("unsupported data type '{other}'")));
            }
        };
        // Optional length/precision arguments such as VARCHAR(255) or NUMBER(10, 2).
        if self.eat_token(&Token::LeftParen) {
            loop {
                match self.peek() {
                    Some(Token::RightParen) => {
                        self.pos += 1;
                        break;
                    }
                    Some(_) => self.pos += 1,
                    None => return Err(self.error("unterminated type arguments")),
                }
            }
        }
        Ok(dt)
    }

    // ---------------------------------------------------------------------
    // Queries
    // ---------------------------------------------------------------------

    /// Parse a query (`[WITH ...] SELECT ... [ORDER BY ...] [LIMIT ...]`).
    pub fn parse_query(&mut self) -> SqlResult<Query> {
        let with = if self.at_keyword(Keyword::With) {
            Some(self.parse_with()?)
        } else {
            None
        };
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_keyword(Keyword::Desc) {
                    false
                } else {
                    self.eat_keyword(Keyword::Asc);
                    true
                };
                order_by.push(OrderByExpr { expr, asc });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword(Keyword::Limit) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let offset = if self.eat_keyword(Keyword::Offset) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Query {
            with,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_with(&mut self) -> SqlResult<With> {
        self.expect_keyword(Keyword::With)?;
        let mut ctes = Vec::new();
        loop {
            let name = self.parse_identifier()?;
            self.expect_keyword(Keyword::As)?;
            self.expect_token(&Token::LeftParen)?;
            let query = self.parse_query()?;
            self.expect_token(&Token::RightParen)?;
            ctes.push(Cte {
                name,
                query,
                comment: None,
            });
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        Ok(With { ctes })
    }

    fn parse_set_expr(&mut self) -> SqlResult<SetExpr> {
        let mut expr = self.parse_set_operand()?;
        loop {
            let op = if self.at_keyword(Keyword::Union) {
                SetOperator::Union
            } else if self.at_keyword(Keyword::Intersect) {
                SetOperator::Intersect
            } else if self.at_keyword(Keyword::Except) {
                SetOperator::Except
            } else {
                break;
            };
            self.pos += 1;
            let all = self.eat_keyword(Keyword::All);
            self.eat_keyword(Keyword::Distinct);
            let right = self.parse_set_operand()?;
            expr = SetExpr::SetOperation {
                op,
                all,
                left: Box::new(expr),
                right: Box::new(right),
            };
        }
        Ok(expr)
    }

    fn parse_set_operand(&mut self) -> SqlResult<SetExpr> {
        if self.at_keyword(Keyword::Select) {
            Ok(SetExpr::Select(Box::new(self.parse_select()?)))
        } else if self.peek() == Some(&Token::LeftParen) {
            self.pos += 1;
            let query = self.parse_query()?;
            self.expect_token(&Token::RightParen)?;
            Ok(SetExpr::Query(Box::new(query)))
        } else {
            Err(self.error("expected SELECT or '('"))
        }
    }

    fn parse_select(&mut self) -> SqlResult<Select> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = if self.eat_keyword(Keyword::Distinct) {
            true
        } else {
            self.eat_keyword(Keyword::All);
            false
        };
        let mut projection = vec![self.parse_select_item()?];
        while self.eat_token(&Token::Comma) {
            projection.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_keyword(Keyword::From) {
            from.push(self.parse_table_with_joins()?);
            while self.eat_token(&Token::Comma) {
                from.push(self.parse_table_with_joins()?);
            }
        }
        let selection = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.eat_token(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Qualified wildcard: ident(.ident)*.*
        if matches!(self.peek(), Some(Token::Identifier { .. })) {
            let mut lookahead = 1;
            loop {
                match (self.peek_at(lookahead), self.peek_at(lookahead + 1)) {
                    (Some(Token::Dot), Some(Token::Star)) => {
                        let name = self.parse_object_name()?;
                        self.expect_token(&Token::Dot)?;
                        self.expect_token(&Token::Star)?;
                        return Ok(SelectItem::QualifiedWildcard(name));
                    }
                    (Some(Token::Dot), Some(Token::Identifier { .. })) => {
                        lookahead += 2;
                    }
                    _ => break,
                }
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.parse_identifier()?)
        } else if matches!(self.peek(), Some(Token::Identifier { .. })) {
            // Implicit alias: `SELECT col new_name FROM ...`
            Some(self.parse_identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_with_joins(&mut self) -> SqlResult<TableWithJoins> {
        let relation = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let operator = if self.eat_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::Cross
            } else if self.eat_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::Inner
            } else if self.eat_keyword(Keyword::Left) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::LeftOuter
            } else if self.eat_keyword(Keyword::Right) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::RightOuter
            } else if self.eat_keyword(Keyword::Full) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinOperator::FullOuter
            } else if self.eat_keyword(Keyword::Join) {
                JoinOperator::Inner
            } else {
                break;
            };
            let relation = self.parse_table_factor()?;
            let constraint = if operator != JoinOperator::Cross && self.eat_keyword(Keyword::On) {
                JoinConstraint::On(self.parse_expr()?)
            } else {
                JoinConstraint::None
            };
            joins.push(Join {
                relation,
                operator,
                constraint,
            });
        }
        Ok(TableWithJoins { relation, joins })
    }

    fn parse_table_factor(&mut self) -> SqlResult<TableFactor> {
        if self.eat_token(&Token::LeftParen) {
            let subquery = self.parse_query()?;
            self.expect_token(&Token::RightParen)?;
            let alias = self.parse_optional_table_alias()?;
            Ok(TableFactor::Derived {
                subquery: Box::new(subquery),
                alias,
            })
        } else {
            let name = self.parse_object_name()?;
            let alias = self.parse_optional_table_alias()?;
            Ok(TableFactor::Table { name, alias })
        }
    }

    fn parse_optional_table_alias(&mut self) -> SqlResult<Option<Ident>> {
        if self.eat_keyword(Keyword::As) {
            return Ok(Some(self.parse_identifier()?));
        }
        if matches!(self.peek(), Some(Token::Identifier { .. })) {
            return Ok(Some(self.parse_identifier()?));
        }
        Ok(None)
    }

    // ---------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ---------------------------------------------------------------------

    /// Parse a scalar expression.
    pub fn parse_expr(&mut self) -> SqlResult<Expr> {
        self.parse_or_expr()
    }

    fn parse_or_expr(&mut self) -> SqlResult<Expr> {
        let mut expr = self.parse_and_expr()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and_expr()?;
            expr = Expr::binary(expr, BinaryOperator::Or, right);
        }
        Ok(expr)
    }

    fn parse_and_expr(&mut self) -> SqlResult<Expr> {
        let mut expr = self.parse_not_expr()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not_expr()?;
            expr = Expr::binary(expr, BinaryOperator::And, right);
        }
        Ok(expr)
    }

    fn parse_not_expr(&mut self) -> SqlResult<Expr> {
        if self.at_keyword(Keyword::Not)
            && !matches!(self.peek_at(1), Some(t) if t.is_keyword(Keyword::Exists))
        {
            self.pos += 1;
            let inner = self.parse_not_expr()?;
            return Ok(Expr::UnaryOp {
                op: UnaryOperator::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison_expr()
    }

    fn parse_comparison_expr(&mut self) -> SqlResult<Expr> {
        let expr = self.parse_additive_expr()?;

        // Postfix predicates: IS NULL, BETWEEN, IN, LIKE.
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(expr),
                negated,
            });
        }

        let negated = if self.at_keyword(Keyword::Not)
            && matches!(
                self.peek_at(1),
                Some(t) if t.is_keyword(Keyword::In)
                    || t.is_keyword(Keyword::Between)
                    || t.is_keyword(Keyword::Like)
            ) {
            self.pos += 1;
            true
        } else {
            false
        };

        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_additive_expr()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(expr),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword(Keyword::Like) {
            let pattern = self.parse_additive_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(expr),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_keyword(Keyword::In) {
            self.expect_token(&Token::LeftParen)?;
            if self.at_keyword(Keyword::Select) || self.at_keyword(Keyword::With) {
                let subquery = self.parse_query()?;
                self.expect_token(&Token::RightParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(expr),
                    subquery: Box::new(subquery),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat_token(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_token(&Token::RightParen)?;
            return Ok(Expr::InList {
                expr: Box::new(expr),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.error("expected IN, BETWEEN, or LIKE after NOT"));
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOperator::Eq),
            Some(Token::NotEq) => Some(BinaryOperator::NotEq),
            Some(Token::Lt) => Some(BinaryOperator::Lt),
            Some(Token::LtEq) => Some(BinaryOperator::LtEq),
            Some(Token::Gt) => Some(BinaryOperator::Gt),
            Some(Token::GtEq) => Some(BinaryOperator::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive_expr()?;
            return Ok(Expr::binary(expr, op, right));
        }
        Ok(expr)
    }

    fn parse_additive_expr(&mut self) -> SqlResult<Expr> {
        let mut expr = self.parse_multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOperator::Plus,
                Some(Token::Minus) => BinaryOperator::Minus,
                Some(Token::Concat) => BinaryOperator::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative_expr()?;
            expr = Expr::binary(expr, op, right);
        }
        Ok(expr)
    }

    fn parse_multiplicative_expr(&mut self) -> SqlResult<Expr> {
        let mut expr = self.parse_unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOperator::Multiply,
                Some(Token::Slash) => BinaryOperator::Divide,
                Some(Token::Percent) => BinaryOperator::Modulo,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary_expr()?;
            expr = Expr::binary(expr, op, right);
        }
        Ok(expr)
    }

    fn parse_unary_expr(&mut self) -> SqlResult<Expr> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                let inner = self.parse_unary_expr()?;
                Ok(Expr::UnaryOp {
                    op: UnaryOperator::Minus,
                    expr: Box::new(inner),
                })
            }
            Some(Token::Plus) => {
                self.pos += 1;
                let inner = self.parse_unary_expr()?;
                Ok(Expr::UnaryOp {
                    op: UnaryOperator::Plus,
                    expr: Box::new(inner),
                })
            }
            _ => self.parse_primary_expr(),
        }
    }

    fn parse_primary_expr(&mut self) -> SqlResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Number(n)))
            }
            Some(Token::StringLiteral(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::String(s)))
            }
            Some(Token::Keyword(Keyword::Null)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Null))
            }
            Some(Token::Keyword(Keyword::True)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            Some(Token::Keyword(Keyword::False)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            Some(Token::Keyword(Keyword::Case)) => self.parse_case_expr(),
            Some(Token::Keyword(Keyword::Cast)) => self.parse_cast_expr(),
            Some(Token::Keyword(Keyword::Exists)) => {
                self.pos += 1;
                self.expect_token(&Token::LeftParen)?;
                let subquery = self.parse_query()?;
                self.expect_token(&Token::RightParen)?;
                Ok(Expr::Exists {
                    subquery: Box::new(subquery),
                    negated: false,
                })
            }
            Some(Token::Keyword(Keyword::Not)) if matches!(self.peek_at(1), Some(t) if t.is_keyword(Keyword::Exists)) =>
            {
                self.pos += 2;
                self.expect_token(&Token::LeftParen)?;
                let subquery = self.parse_query()?;
                self.expect_token(&Token::RightParen)?;
                Ok(Expr::Exists {
                    subquery: Box::new(subquery),
                    negated: true,
                })
            }
            Some(Token::Keyword(kw)) if kw.is_aggregate() => {
                // Aggregate keywords are parsed as function calls.
                self.pos += 1;
                self.parse_function_call(Ident::new(kw.as_str()))
            }
            Some(Token::LeftParen) => {
                self.pos += 1;
                if self.at_keyword(Keyword::Select) || self.at_keyword(Keyword::With) {
                    let subquery = self.parse_query()?;
                    self.expect_token(&Token::RightParen)?;
                    Ok(Expr::Subquery(Box::new(subquery)))
                } else {
                    let inner = self.parse_expr()?;
                    self.expect_token(&Token::RightParen)?;
                    Ok(Expr::Nested(Box::new(inner)))
                }
            }
            Some(Token::Star) => {
                self.pos += 1;
                Ok(Expr::Wildcard)
            }
            Some(Token::Identifier { .. }) | Some(Token::Keyword(_)) => {
                let ident = self.parse_identifier()?;
                // Function call?
                if self.peek() == Some(&Token::LeftParen) {
                    return self.parse_function_call(ident);
                }
                // Compound identifier?
                if self.peek() == Some(&Token::Dot) {
                    let mut parts = vec![ident];
                    while self.eat_token(&Token::Dot) {
                        if self.eat_token(&Token::Star) {
                            // t.* inside expressions (e.g. COUNT(t.*)) — treat as wildcard.
                            return Ok(Expr::Wildcard);
                        }
                        parts.push(self.parse_identifier()?);
                    }
                    return Ok(Expr::CompoundIdentifier(parts));
                }
                Ok(Expr::Identifier(ident))
            }
            Some(other) => Err(self.error(format!("unexpected token '{other}' in expression"))),
            None => Err(self.error("unexpected end of input in expression")),
        }
    }

    fn parse_function_call(&mut self, name: Ident) -> SqlResult<Expr> {
        self.expect_token(&Token::LeftParen)?;
        let mut distinct = false;
        let mut args = Vec::new();
        if !self.eat_token(&Token::RightParen) {
            distinct = self.eat_keyword(Keyword::Distinct);
            if self.eat_token(&Token::Star) {
                args.push(Expr::Wildcard);
            } else {
                args.push(self.parse_expr()?);
            }
            while self.eat_token(&Token::Comma) {
                args.push(self.parse_expr()?);
            }
            self.expect_token(&Token::RightParen)?;
        }
        Ok(Expr::Function {
            name,
            args,
            distinct,
        })
    }

    fn parse_case_expr(&mut self) -> SqlResult<Expr> {
        self.expect_keyword(Keyword::Case)?;
        let operand = if !self.at_keyword(Keyword::When) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut conditions = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let cond = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let result = self.parse_expr()?;
            conditions.push((cond, result));
        }
        if conditions.is_empty() {
            return Err(self.error("CASE expression requires at least one WHEN clause"));
        }
        let else_result = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            conditions,
            else_result,
        })
    }

    fn parse_cast_expr(&mut self) -> SqlResult<Expr> {
        self.expect_keyword(Keyword::Cast)?;
        self.expect_token(&Token::LeftParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword(Keyword::As)?;
        let data_type = self.parse_data_type()?;
        self.expect_token(&Token::RightParen)?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            data_type,
        })
    }
}

/// Parse a single statement from SQL text.
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    Parser::parse_statement_text(sql)
}

/// Parse a single query (convenience wrapper that rejects non-queries).
pub fn parse_query(sql: &str) -> SqlResult<Query> {
    match Parser::parse_statement_text(sql)? {
        Statement::Query(q) => Ok(q),
        Statement::CreateTable(_) => Err(SqlError::unsupported(
            "expected a query, found CREATE TABLE",
        )),
    }
}

/// Parse every statement in a multi-statement script.
pub fn parse_statements(sql: &str) -> SqlResult<Vec<Statement>> {
    Parser::parse_statements_text(sql)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse_query("SELECT a, b FROM t WHERE a = 1").unwrap();
        let select = q.top_select().unwrap();
        assert_eq!(select.projection.len(), 2);
        assert_eq!(select.from.len(), 1);
        assert!(select.selection.is_some());
    }

    #[test]
    fn parses_star_and_qualified_star() {
        let q = parse_query("SELECT *, t.* FROM t").unwrap();
        let select = q.top_select().unwrap();
        assert!(matches!(select.projection[0], SelectItem::Wildcard));
        assert!(matches!(
            select.projection[1],
            SelectItem::QualifiedWildcard(_)
        ));
    }

    #[test]
    fn parses_aliases() {
        let q = parse_query("SELECT a AS x, b y FROM t AS u, v w").unwrap();
        let select = q.top_select().unwrap();
        match &select.projection[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_ref().unwrap().value, "x"),
            _ => panic!(),
        }
        match &select.projection[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_ref().unwrap().value, "y"),
            _ => panic!(),
        }
        assert_eq!(select.from.len(), 2);
    }

    #[test]
    fn parses_joins() {
        let q = parse_query(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT OUTER JOIN c ON b.id = c.id CROSS JOIN d",
        )
        .unwrap();
        let select = q.top_select().unwrap();
        let joins = &select.from[0].joins;
        assert_eq!(joins.len(), 3);
        assert_eq!(joins[0].operator, JoinOperator::Inner);
        assert_eq!(joins[1].operator, JoinOperator::LeftOuter);
        assert_eq!(joins[2].operator, JoinOperator::Cross);
        assert!(matches!(joins[2].constraint, JoinConstraint::None));
    }

    #[test]
    fn parses_group_by_having_order_limit() {
        let q = parse_query(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 5 ORDER BY 2 DESC LIMIT 10 OFFSET 5",
        )
        .unwrap();
        let select = q.top_select().unwrap();
        assert_eq!(select.group_by.len(), 1);
        assert!(select.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert!(q.limit.is_some());
        assert!(q.offset.is_some());
    }

    #[test]
    fn parses_nested_subqueries() {
        let q = parse_query(
            "SELECT name FROM students WHERE id IN (SELECT student_id FROM enrollments WHERE term = 'J-term') AND gpa > (SELECT AVG(gpa) FROM students)",
        )
        .unwrap();
        let select = q.top_select().unwrap();
        let where_clause = select.selection.as_ref().unwrap();
        // Top-level is AND of InSubquery and comparison-with-scalar-subquery.
        match where_clause {
            Expr::BinaryOp { op, left, right } => {
                assert_eq!(*op, BinaryOperator::And);
                assert!(matches!(**left, Expr::InSubquery { .. }));
                assert!(matches!(
                    **right,
                    Expr::BinaryOp {
                        op: BinaryOperator::Gt,
                        ..
                    }
                ));
            }
            _ => panic!("expected AND"),
        }
    }

    #[test]
    fn parses_with_cte() {
        let q = parse_query(
            "WITH big AS (SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept), top1 AS (SELECT * FROM big ORDER BY n DESC LIMIT 1) SELECT * FROM top1",
        )
        .unwrap();
        let with = q.with.as_ref().unwrap();
        assert_eq!(with.ctes.len(), 2);
        assert_eq!(with.ctes[0].name.value, "big");
        assert_eq!(with.ctes[1].name.value, "top1");
    }

    #[test]
    fn parses_derived_table() {
        let q = parse_query("SELECT x FROM (SELECT a AS x FROM t) AS d WHERE x > 0").unwrap();
        let select = q.top_select().unwrap();
        assert!(matches!(
            select.from[0].relation,
            TableFactor::Derived { .. }
        ));
    }

    #[test]
    fn parses_set_operations() {
        let q = parse_query("SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM v")
            .unwrap();
        match q.body {
            SetExpr::SetOperation { op, .. } => assert_eq!(op, SetOperator::Except),
            _ => panic!("expected set operation"),
        }
    }

    #[test]
    fn parses_case_and_cast() {
        let q = parse_query(
            "SELECT CASE WHEN grade >= 90 THEN 'A' WHEN grade >= 80 THEN 'B' ELSE 'C' END, CAST(score AS INTEGER) FROM results",
        )
        .unwrap();
        let select = q.top_select().unwrap();
        assert_eq!(select.projection.len(), 2);
    }

    #[test]
    fn parses_between_like_isnull_inlist() {
        let q = parse_query(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT LIKE 'x%' AND c IS NOT NULL AND d IN (1, 2, 3) AND e NOT IN (4)",
        )
        .unwrap();
        assert!(q.top_select().unwrap().selection.is_some());
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let q = parse_query(
            "SELECT * FROM a WHERE EXISTS (SELECT 1 FROM b) AND NOT EXISTS (SELECT 1 FROM c)",
        )
        .unwrap();
        assert!(q.top_select().unwrap().selection.is_some());
    }

    #[test]
    fn parses_count_distinct() {
        let q = parse_query("SELECT COUNT(DISTINCT moira_list_name) FROM moira_list").unwrap();
        let select = q.top_select().unwrap();
        match &select.projection[0] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, args, .. },
                ..
            } => {
                assert!(*distinct);
                assert_eq!(args.len(), 1);
            }
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn parses_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE MOIRA_LIST (MOIRA_LIST_KEY NUMBER PRIMARY KEY, MOIRA_LIST_NAME VARCHAR2(255) NOT NULL, IS_ACTIVE BOOLEAN, CREATED_ON DATE, PRIMARY KEY (MOIRA_LIST_KEY))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name.base().value, "MOIRA_LIST");
                assert_eq!(ct.columns.len(), 4);
                assert!(ct.columns[0].primary_key);
                assert_eq!(ct.columns[1].data_type, DataType::Text);
                assert!(!ct.columns[1].nullable);
                assert_eq!(ct.columns[3].data_type, DataType::Date);
            }
            _ => panic!("expected CREATE TABLE"),
        }
    }

    #[test]
    fn parses_create_table_with_references() {
        let stmt = parse_statement(
            "CREATE TABLE enrollments (id INT PRIMARY KEY, student_id INT REFERENCES students(id))",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(ct) => {
                let fk = ct.columns[1].references.as_ref().unwrap();
                assert_eq!(fk.0.base().value, "students");
                assert_eq!(fk.1.value, "id");
            }
            _ => panic!("expected CREATE TABLE"),
        }
    }

    #[test]
    fn parses_multi_statement_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); SELECT a FROM t; SELECT COUNT(*) FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("SELECT a FROM t extra garbage here now").is_err());
    }

    #[test]
    fn rejects_malformed_case() {
        assert!(parse_query("SELECT CASE END FROM t").is_err());
    }

    #[test]
    fn operator_precedence_and_over_or() {
        let q = parse_query("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match q.top_select().unwrap().selection.as_ref().unwrap() {
            Expr::BinaryOp { op, .. } => assert_eq!(*op, BinaryOperator::Or),
            _ => panic!("expected OR at top"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT 1 + 2 * 3").unwrap();
        match &q.top_select().unwrap().projection[0] {
            SelectItem::Expr {
                expr: Expr::BinaryOp { op, .. },
                ..
            } => assert_eq!(*op, BinaryOperator::Plus),
            _ => panic!("expected plus at top"),
        }
    }

    #[test]
    fn parses_scalar_subquery_in_projection() {
        let q = parse_query(
            "SELECT COUNT(DISTINCT dl.name), (SELECT name FROM lists ORDER BY n DESC LIMIT 1) FROM dl",
        )
        .unwrap();
        let select = q.top_select().unwrap();
        assert!(matches!(
            select.projection[1],
            SelectItem::Expr {
                expr: Expr::Subquery(_),
                ..
            }
        ));
    }
}
