//! SQL pretty-printing: `Display` implementations that render the AST back
//! to canonical SQL text.
//!
//! The output is deterministic and parseable by [`crate::parser`], which the
//! round-trip property tests rely on.

use crate::ast::*;
use std::fmt;

fn write_ident(f: &mut fmt::Formatter<'_>, ident: &Ident) -> fmt::Result {
    if ident.quoted {
        write!(f, "\"{}\"", ident.value)
    } else {
        f.write_str(&ident.value)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_ident(f, self)
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::CreateTable(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{col}")?;
        }
        f.write_str(")")
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type.as_sql())?;
        if self.primary_key {
            f.write_str(" PRIMARY KEY")?;
        } else if !self.nullable {
            f.write_str(" NOT NULL")?;
        }
        if let Some((table, column)) = &self.references {
            write!(f, " REFERENCES {table}({column})")?;
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(with) = &self.with {
            write!(f, "{with} ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{item}")?;
            }
        }
        if let Some(limit) = &self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(offset) = &self.offset {
            write!(f, " OFFSET {offset}")?;
        }
        Ok(())
    }
}

impl fmt::Display for With {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WITH ")?;
        for (i, cte) in self.ctes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{} AS ({})", cte.name, cte.query)?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::Query(q) => write!(f, "({q})"),
            SetExpr::SetOperation {
                op,
                all,
                left,
                right,
            } => {
                write!(f, "{left} {}", op.as_str())?;
                if *all {
                    f.write_str(" ALL")?;
                }
                write!(f, " {right}")
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, twj) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{twj}")?;
            }
        }
        if let Some(selection) = &self.selection {
            write!(f, " WHERE {selection}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, expr) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{expr}")?;
            }
        }
        if let Some(having) = &self.having {
            write!(f, " HAVING {having}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(name) => write!(f, "{name}.*"),
        }
    }
}

impl fmt::Display for TableWithJoins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        for join in &self.joins {
            write!(f, " {}", join)?;
        }
        Ok(())
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
            TableFactor::Derived { subquery, alias } => {
                write!(f, "({subquery})")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.operator.as_sql(), self.relation)?;
        if let JoinConstraint::On(expr) = &self.constraint {
            write!(f, " ON {expr}")?;
        }
        Ok(())
    }
}

impl fmt::Display for OrderByExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if !self.asc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => f.write_str(n),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Boolean(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Identifier(i) => write!(f, "{i}"),
            Expr::CompoundIdentifier(parts) => {
                for (i, part) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    write!(f, "{part}")?;
                }
                Ok(())
            }
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::BinaryOp { left, op, right } => {
                write!(f, "{left} {} {right}", op.as_sql())
            }
            Expr::UnaryOp { op, expr } => match op {
                UnaryOperator::Not => write!(f, "NOT {expr}"),
                UnaryOperator::Minus => write!(f, "-{expr}"),
                UnaryOperator::Plus => write!(f, "+{expr}"),
            },
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                f.write_str(")")
            }
            Expr::Case {
                operand,
                conditions,
                else_result,
            } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (cond, result) in conditions {
                    write!(f, " WHEN {cond} THEN {result}")?;
                }
                if let Some(else_result) = else_result {
                    write!(f, " ELSE {else_result}")?;
                }
                f.write_str(" END")
            }
            Expr::Exists { subquery, negated } => {
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "EXISTS ({subquery})")
            }
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                write!(f, "{expr} ")?;
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "IN ({subquery})")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} ")?;
                if *negated {
                    f.write_str("NOT ")?;
                }
                f.write_str("IN (")?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str(")")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write!(f, "{expr} ")?;
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "BETWEEN {low} AND {high}")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS ")?;
                if *negated {
                    f.write_str("NOT ")?;
                }
                f.write_str("NULL")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(f, "{expr} ")?;
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "LIKE {pattern}")
            }
            Expr::Cast { expr, data_type } => {
                write!(f, "CAST({expr} AS {})", data_type.as_sql())
            }
            Expr::Nested(e) => write!(f, "({e})"),
            Expr::Wildcard => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_statement};

    fn round_trip(sql: &str) {
        let q1 = parse_query(sql).expect("first parse");
        let rendered = q1.to_string();
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of '{rendered}' failed: {e}"));
        assert_eq!(q1, q2, "round trip changed the AST for: {sql}");
    }

    #[test]
    fn round_trips_simple_queries() {
        round_trip("SELECT a, b FROM t WHERE a = 1");
        round_trip("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 5");
        round_trip("SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2");
    }

    #[test]
    fn round_trips_joins_and_subqueries() {
        round_trip("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x");
        round_trip("SELECT x FROM (SELECT a AS x FROM t) AS d WHERE x IN (SELECT y FROM u)");
        round_trip("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)");
    }

    #[test]
    fn round_trips_ctes_and_set_ops() {
        round_trip("WITH c AS (SELECT a FROM t) SELECT * FROM c UNION ALL SELECT a FROM u");
        round_trip("SELECT a FROM t INTERSECT SELECT a FROM u");
    }

    #[test]
    fn round_trips_expressions() {
        round_trip("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t");
        round_trip("SELECT CAST(a AS INTEGER), -b, NOT c, a || b FROM t");
        round_trip(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b LIKE 'x%' AND c IS NOT NULL AND d NOT IN (1, 2)",
        );
    }

    #[test]
    fn renders_create_table() {
        let stmt =
            parse_statement("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(10) NOT NULL)")
                .unwrap();
        let text = stmt.to_string();
        assert!(text.contains("CREATE TABLE t"));
        assert!(text.contains("id INTEGER PRIMARY KEY"));
        assert!(text.contains("name VARCHAR NOT NULL"));
    }

    #[test]
    fn string_literal_escaping() {
        let lit = Literal::String("it's".into());
        assert_eq!(lit.to_string(), "'it''s'");
    }
}
