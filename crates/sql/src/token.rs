//! Token definitions and keyword table for the SQL lexer.

use std::fmt;

/// A single lexical token produced by the [`crate::lexer::Lexer`].
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// SQL keyword (normalized to uppercase), e.g. `SELECT`.
    Keyword(Keyword),
    /// Unquoted or double-quoted identifier; the flag records quoting.
    Identifier {
        /// Identifier text without surrounding quotes.
        value: String,
        /// Whether the identifier was double-quoted in the source.
        quoted: bool,
    },
    /// Numeric literal kept as text to preserve formatting.
    Number(String),
    /// Single-quoted string literal with quotes stripped and escapes resolved.
    StringLiteral(String),
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||` string concatenation
    Concat,
}

impl Token {
    /// Returns true when this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self, Token::Keyword(k) if *k == kw)
    }

    /// Rough display width used for token-count statistics.
    pub fn text(&self) -> String {
        match self {
            Token::Keyword(k) => k.as_str().to_string(),
            Token::Identifier { value, quoted } => {
                if *quoted {
                    format!("\"{value}\"")
                } else {
                    value.clone()
                }
            }
            Token::Number(n) => n.clone(),
            Token::StringLiteral(s) => format!("'{s}'"),
            Token::LeftParen => "(".into(),
            Token::RightParen => ")".into(),
            Token::Comma => ",".into(),
            Token::Dot => ".".into(),
            Token::Semicolon => ";".into(),
            Token::Star => "*".into(),
            Token::Plus => "+".into(),
            Token::Minus => "-".into(),
            Token::Slash => "/".into(),
            Token::Percent => "%".into(),
            Token::Eq => "=".into(),
            Token::NotEq => "<>".into(),
            Token::Lt => "<".into(),
            Token::LtEq => "<=".into(),
            Token::Gt => ">".into(),
            Token::GtEq => ">=".into(),
            Token::Concat => "||".into(),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text())
    }
}

macro_rules! define_keywords {
    ($($name:ident => $text:literal),+ $(,)?) => {
        /// All SQL keywords recognized by the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($name,)+
        }

        impl Keyword {
            /// The canonical uppercase spelling of the keyword.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(Keyword::$name => $text,)+
                }
            }

            /// Look up a keyword from an identifier-like word (case-insensitive).
            pub fn from_word(word: &str) -> Option<Keyword> {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    $($text => Some(Keyword::$name),)+
                    _ => None,
                }
            }

            /// Every keyword, in declaration order.
            pub fn all() -> &'static [Keyword] {
                &[$(Keyword::$name,)+]
            }
        }
    };
}

define_keywords! {
    Select => "SELECT",
    From => "FROM",
    Where => "WHERE",
    Group => "GROUP",
    By => "BY",
    Having => "HAVING",
    Order => "ORDER",
    Limit => "LIMIT",
    Offset => "OFFSET",
    As => "AS",
    On => "ON",
    Join => "JOIN",
    Inner => "INNER",
    Left => "LEFT",
    Right => "RIGHT",
    Full => "FULL",
    Outer => "OUTER",
    Cross => "CROSS",
    Union => "UNION",
    Intersect => "INTERSECT",
    Except => "EXCEPT",
    All => "ALL",
    Distinct => "DISTINCT",
    And => "AND",
    Or => "OR",
    Not => "NOT",
    In => "IN",
    Exists => "EXISTS",
    Between => "BETWEEN",
    Like => "LIKE",
    Is => "IS",
    Null => "NULL",
    True => "TRUE",
    False => "FALSE",
    Case => "CASE",
    When => "WHEN",
    Then => "THEN",
    Else => "ELSE",
    End => "END",
    Cast => "CAST",
    With => "WITH",
    Asc => "ASC",
    Desc => "DESC",
    Create => "CREATE",
    Table => "TABLE",
    Primary => "PRIMARY",
    Key => "KEY",
    Foreign => "FOREIGN",
    References => "REFERENCES",
    Unique => "UNIQUE",
    Integer => "INTEGER",
    Int => "INT",
    Bigint => "BIGINT",
    Smallint => "SMALLINT",
    Number => "NUMBER",
    Decimal => "DECIMAL",
    Numeric => "NUMERIC",
    Float => "FLOAT",
    Real => "REAL",
    Double => "DOUBLE",
    Precision => "PRECISION",
    Varchar => "VARCHAR",
    Varchar2 => "VARCHAR2",
    Char => "CHAR",
    Text => "TEXT",
    Date => "DATE",
    Timestamp => "TIMESTAMP",
    Boolean => "BOOLEAN",
    Count => "COUNT",
    Sum => "SUM",
    Avg => "AVG",
    Min => "MIN",
    Max => "MAX",
}

impl Keyword {
    /// Keywords that introduce or shape query structure; used by the
    /// analyzer to compute the "#Keywords" statistic the way query-log
    /// complexity studies do (structural keywords only, not type names).
    pub fn is_structural(&self) -> bool {
        use Keyword::*;
        matches!(
            self,
            Select
                | From
                | Where
                | Group
                | By
                | Having
                | Order
                | Limit
                | Offset
                | On
                | Join
                | Inner
                | Left
                | Right
                | Full
                | Outer
                | Cross
                | Union
                | Intersect
                | Except
                | Distinct
                | And
                | Or
                | Not
                | In
                | Exists
                | Between
                | Like
                | Is
                | Case
                | When
                | Then
                | Else
                | End
                | With
                | Count
                | Sum
                | Avg
                | Min
                | Max
        )
    }

    /// Keywords naming aggregate functions.
    pub fn is_aggregate(&self) -> bool {
        use Keyword::*;
        matches!(self, Count | Sum | Avg | Min | Max)
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in Keyword::all() {
            assert_eq!(Keyword::from_word(kw.as_str()), Some(*kw));
            assert_eq!(Keyword::from_word(&kw.as_str().to_lowercase()), Some(*kw));
        }
    }

    #[test]
    fn non_keyword_words_are_none() {
        assert_eq!(Keyword::from_word("moira_list"), None);
        assert_eq!(Keyword::from_word("selects"), None);
        assert_eq!(Keyword::from_word(""), None);
    }

    #[test]
    fn aggregates_are_structural() {
        for kw in Keyword::all() {
            if kw.is_aggregate() {
                assert!(kw.is_structural(), "{kw} should be structural");
            }
        }
    }

    #[test]
    fn token_text_round_trip() {
        assert_eq!(Token::Keyword(Keyword::Select).text(), "SELECT");
        assert_eq!(
            Token::Identifier {
                value: "x".into(),
                quoted: true
            }
            .text(),
            "\"x\""
        );
        assert_eq!(Token::StringLiteral("a'b".into()).text(), "'a'b'");
        assert_eq!(Token::Concat.text(), "||");
    }

    #[test]
    fn is_keyword_helper() {
        assert!(Token::Keyword(Keyword::From).is_keyword(Keyword::From));
        assert!(!Token::Keyword(Keyword::From).is_keyword(Keyword::Select));
        assert!(!Token::Comma.is_keyword(Keyword::Select));
    }
}
