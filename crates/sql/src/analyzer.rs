//! Structural analysis of SQL queries.
//!
//! [`QueryAnalysis`] captures the query-level complexity statistics that the
//! paper reports in Table 1 (#Keywords, #Tokens, #Tables, #Columns, #Agg,
//! #Nestings) plus additional structural facts (joins, predicates, grouping,
//! ordering, set operations) that the simulated LLM and the annotation
//! accuracy scorer rely on.

use crate::ast::*;
use crate::lexer::tokenize;
use crate::token::Token;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Structural summary of a single SQL query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryAnalysis {
    /// Number of structural SQL keywords in the token stream.
    pub keyword_count: usize,
    /// Total number of lexical tokens.
    pub token_count: usize,
    /// Distinct base table names referenced anywhere in the query
    /// (CTE names are excluded; they are intermediate results).
    pub tables: BTreeSet<String>,
    /// Distinct column names referenced anywhere in the query.
    pub columns: BTreeSet<String>,
    /// Number of aggregate function calls (COUNT/SUM/AVG/MIN/MAX).
    pub aggregate_count: usize,
    /// Maximum query nesting depth: 0 for a flat query, +1 for each level of
    /// subquery/derived table/CTE nesting.
    pub nesting_depth: usize,
    /// Total number of subqueries (scalar, IN, EXISTS, derived tables, CTEs).
    pub subquery_count: usize,
    /// Number of explicit JOIN clauses.
    pub join_count: usize,
    /// Number of comparison/membership/null/like predicates.
    pub predicate_count: usize,
    /// Whether any SELECT in the query has a GROUP BY.
    pub has_group_by: bool,
    /// Whether the outermost query has an ORDER BY.
    pub has_order_by: bool,
    /// Whether the outermost query has a LIMIT.
    pub has_limit: bool,
    /// Whether any SELECT uses DISTINCT.
    pub has_distinct: bool,
    /// Number of set operations (UNION/INTERSECT/EXCEPT).
    pub set_operation_count: usize,
    /// Number of CTEs declared in WITH clauses.
    pub cte_count: usize,
    /// Names of aggregate functions used, in encounter order (with repeats).
    pub aggregate_functions: Vec<String>,
    /// String literals appearing in predicates (domain terms often live here).
    pub literal_terms: Vec<String>,
}

impl QueryAnalysis {
    /// Number of distinct tables referenced.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of distinct columns referenced.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Whether the query contains any nesting at all (subqueries or CTEs).
    pub fn is_nested(&self) -> bool {
        self.nesting_depth > 0
    }

    /// A scalar "difficulty" proxy combining the Table 1 dimensions. Used by
    /// the annotator behaviour model and the simulated LLM to scale error
    /// probability with compositional depth.
    pub fn difficulty_score(&self) -> f64 {
        let tables = self.table_count() as f64;
        let columns = self.column_count() as f64;
        let aggregates = self.aggregate_count as f64;
        let nesting = self.nesting_depth as f64;
        let joins = self.join_count as f64;
        let predicates = self.predicate_count as f64;
        // Weighted sum; weights chosen so public-benchmark-style queries land
        // around 1-4 and enterprise (Beaver-like) queries around 8-20.
        0.8 * tables
            + 0.25 * columns
            + 0.9 * aggregates
            + 2.0 * nesting
            + 0.6 * joins
            + 0.3 * predicates
    }
}

/// Analyze a query AST together with its original text (for token counts).
pub fn analyze_query_text(query: &Query, sql_text: &str) -> QueryAnalysis {
    let mut analysis = analyze_query(query);
    fill_token_stats(&mut analysis, sql_text);
    analysis
}

/// Analyze a parsed query. Token/keyword counts are computed from the
/// canonical rendering of the query.
pub fn analyze(query: &Query) -> QueryAnalysis {
    let rendered = query.to_string();
    analyze_query_text(query, &rendered)
}

fn fill_token_stats(analysis: &mut QueryAnalysis, sql_text: &str) {
    if let Ok(tokens) = tokenize(sql_text) {
        analysis.token_count = tokens.len();
        analysis.keyword_count = tokens
            .iter()
            .filter(|t| matches!(t, Token::Keyword(k) if k.is_structural()))
            .count();
    }
}

fn analyze_query(query: &Query) -> QueryAnalysis {
    let mut analysis = QueryAnalysis::default();
    walk_query(query, 0, &mut analysis);
    analysis.has_order_by = !query.order_by.is_empty();
    analysis.has_limit = query.limit.is_some();
    analysis
}

fn walk_query(query: &Query, depth: usize, a: &mut QueryAnalysis) {
    a.nesting_depth = a.nesting_depth.max(depth);
    if let Some(with) = &query.with {
        a.cte_count += with.ctes.len();
        for cte in &with.ctes {
            a.subquery_count += 1;
            walk_query(&cte.query, depth + 1, a);
        }
    }
    walk_set_expr(&query.body, depth, a);
    for item in &query.order_by {
        walk_expr(&item.expr, depth, a);
    }
    if let Some(limit) = &query.limit {
        walk_expr(limit, depth, a);
    }
    if let Some(offset) = &query.offset {
        walk_expr(offset, depth, a);
    }
}

fn walk_set_expr(body: &SetExpr, depth: usize, a: &mut QueryAnalysis) {
    match body {
        SetExpr::Select(select) => walk_select(select, depth, a),
        SetExpr::Query(query) => walk_query(query, depth, a),
        SetExpr::SetOperation { left, right, .. } => {
            a.set_operation_count += 1;
            walk_set_expr(left, depth, a);
            walk_set_expr(right, depth, a);
        }
    }
}

fn walk_select(select: &Select, depth: usize, a: &mut QueryAnalysis) {
    if select.distinct {
        a.has_distinct = true;
    }
    if !select.group_by.is_empty() {
        a.has_group_by = true;
    }
    for item in &select.projection {
        match item {
            SelectItem::Expr { expr, .. } => walk_expr(expr, depth, a),
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {}
        }
    }
    for twj in &select.from {
        walk_table_factor(&twj.relation, depth, a);
        for join in &twj.joins {
            a.join_count += 1;
            walk_table_factor(&join.relation, depth, a);
            if let JoinConstraint::On(expr) = &join.constraint {
                walk_expr(expr, depth, a);
            }
        }
    }
    if let Some(selection) = &select.selection {
        walk_expr(selection, depth, a);
    }
    for expr in &select.group_by {
        walk_expr(expr, depth, a);
    }
    if let Some(having) = &select.having {
        walk_expr(having, depth, a);
    }
}

fn walk_table_factor(factor: &TableFactor, depth: usize, a: &mut QueryAnalysis) {
    match factor {
        TableFactor::Table { name, .. } => {
            a.tables.insert(name.base().normalized());
        }
        TableFactor::Derived { subquery, .. } => {
            a.subquery_count += 1;
            walk_query(subquery, depth + 1, a);
        }
    }
}

fn record_column(a: &mut QueryAnalysis, name: &Ident) {
    a.columns.insert(name.normalized());
}

fn walk_expr(expr: &Expr, depth: usize, a: &mut QueryAnalysis) {
    match expr {
        Expr::Identifier(ident) => record_column(a, ident),
        Expr::CompoundIdentifier(parts) => {
            if let Some(last) = parts.last() {
                record_column(a, last);
            }
        }
        Expr::Literal(Literal::String(s)) => a.literal_terms.push(s.clone()),
        Expr::Literal(_) => {}
        Expr::BinaryOp { left, op, right } => {
            if op.is_comparison() {
                a.predicate_count += 1;
            }
            walk_expr(left, depth, a);
            walk_expr(right, depth, a);
        }
        Expr::UnaryOp { expr, .. } => walk_expr(expr, depth, a),
        Expr::Function {
            name,
            args,
            distinct: _,
        } => {
            if expr.is_aggregate_call() {
                a.aggregate_count += 1;
                a.aggregate_functions.push(name.value.to_ascii_uppercase());
            }
            for arg in args {
                walk_expr(arg, depth, a);
            }
        }
        Expr::Case {
            operand,
            conditions,
            else_result,
        } => {
            if let Some(op) = operand {
                walk_expr(op, depth, a);
            }
            for (cond, result) in conditions {
                walk_expr(cond, depth, a);
                walk_expr(result, depth, a);
            }
            if let Some(else_result) = else_result {
                walk_expr(else_result, depth, a);
            }
        }
        Expr::Exists { subquery, .. } => {
            a.predicate_count += 1;
            a.subquery_count += 1;
            walk_query(subquery, depth + 1, a);
        }
        Expr::Subquery(subquery) => {
            a.subquery_count += 1;
            walk_query(subquery, depth + 1, a);
        }
        Expr::InSubquery { expr, subquery, .. } => {
            a.predicate_count += 1;
            a.subquery_count += 1;
            walk_expr(expr, depth, a);
            walk_query(subquery, depth + 1, a);
        }
        Expr::InList { expr, list, .. } => {
            a.predicate_count += 1;
            walk_expr(expr, depth, a);
            for item in list {
                walk_expr(item, depth, a);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            a.predicate_count += 1;
            walk_expr(expr, depth, a);
            walk_expr(low, depth, a);
            walk_expr(high, depth, a);
        }
        Expr::IsNull { expr, .. } => {
            a.predicate_count += 1;
            walk_expr(expr, depth, a);
        }
        Expr::Like { expr, pattern, .. } => {
            a.predicate_count += 1;
            walk_expr(expr, depth, a);
            walk_expr(pattern, depth, a);
        }
        Expr::Cast { expr, .. } => walk_expr(expr, depth, a),
        Expr::Nested(inner) => walk_expr(inner, depth, a),
        Expr::Wildcard => {}
    }
}

// ---------------------------------------------------------------------
// Predicate structure analysis: conjunct splitting, column references and
// equi-join key extraction.
//
// These helpers are shared by query *decomposition* (correlation checks on
// subqueries) and by `bp-storage`'s query *planner* (predicate pushdown and
// hash-join key selection), so the two layers agree on what counts as a
// column reference and as an equi-join predicate.
// ---------------------------------------------------------------------

/// A column reference extracted from an expression: an optional qualifier
/// (table alias) and the column identifier. Mirrors how the executor
/// interprets compound identifiers: for `a.b.c` the qualifier is the
/// second-to-last part and the column the last.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Qualifier identifier (e.g. the `t` of `t.x`), if present.
    pub qualifier: Option<Ident>,
    /// The column identifier.
    pub column: Ident,
}

impl ColumnRef {
    /// Case-normalized qualifier, if present.
    pub fn normalized_qualifier(&self) -> Option<String> {
        self.qualifier.as_ref().map(|q| q.normalized())
    }

    /// Case-normalized column name.
    pub fn normalized_column(&self) -> String {
        self.column.normalized()
    }
}

/// Interpret an expression as a bare column reference, unwrapping
/// parentheses. Returns `None` for anything that is not a plain (possibly
/// qualified) identifier.
pub fn column_ref(expr: &Expr) -> Option<ColumnRef> {
    match expr {
        Expr::Identifier(ident) => Some(ColumnRef {
            qualifier: None,
            column: ident.clone(),
        }),
        Expr::CompoundIdentifier(parts) => match parts.len() {
            0 => None,
            1 => Some(ColumnRef {
                qualifier: None,
                column: parts[0].clone(),
            }),
            n => Some(ColumnRef {
                qualifier: Some(parts[n - 2].clone()),
                column: parts[n - 1].clone(),
            }),
        },
        Expr::Nested(inner) => column_ref(inner),
        _ => None,
    }
}

/// Split a predicate into its top-level `AND`-ed conjuncts, unwrapping
/// parentheses around conjunctions. `a AND (b AND c)` yields `[a, b, c]`.
pub fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
        match expr {
            Expr::BinaryOp {
                left,
                op: BinaryOperator::And,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::Nested(inner)
                if matches!(
                    inner.as_ref(),
                    Expr::BinaryOp {
                        op: BinaryOperator::And,
                        ..
                    } | Expr::Nested(_)
                ) =>
            {
                walk(inner, out)
            }
            other => out.push(other),
        }
    }
    walk(expr, &mut out);
    out
}

/// Collect every column reference in an expression, *without* descending
/// into subqueries (their references belong to their own scopes). Used by
/// the planner to decide where a predicate can be evaluated.
pub fn collect_column_refs(expr: &Expr, out: &mut Vec<ColumnRef>) {
    match expr {
        Expr::Identifier(_) | Expr::CompoundIdentifier(_) => {
            if let Some(cr) = column_ref(expr) {
                out.push(cr);
            }
        }
        Expr::Literal(_) | Expr::Wildcard => {}
        Expr::BinaryOp { left, right, .. } => {
            collect_column_refs(left, out);
            collect_column_refs(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_column_refs(expr, out),
        Expr::Function { args, .. } => {
            for arg in args {
                collect_column_refs(arg, out);
            }
        }
        Expr::Case {
            operand,
            conditions,
            else_result,
        } => {
            if let Some(op) = operand {
                collect_column_refs(op, out);
            }
            for (c, r) in conditions {
                collect_column_refs(c, out);
                collect_column_refs(r, out);
            }
            if let Some(e) = else_result {
                collect_column_refs(e, out);
            }
        }
        Expr::Exists { .. } | Expr::Subquery(_) => {}
        Expr::InSubquery { expr, .. } => collect_column_refs(expr, out),
        Expr::InList { expr, list, .. } => {
            collect_column_refs(expr, out);
            for item in list {
                collect_column_refs(item, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_column_refs(expr, out);
            collect_column_refs(low, out);
            collect_column_refs(high, out);
        }
        Expr::IsNull { expr, .. } => collect_column_refs(expr, out),
        Expr::Like { expr, pattern, .. } => {
            collect_column_refs(expr, out);
            collect_column_refs(pattern, out);
        }
        Expr::Cast { expr, .. } => collect_column_refs(expr, out),
        Expr::Nested(inner) => collect_column_refs(inner, out),
    }
}

/// The direct subqueries of an expression (not recursing into them).
pub fn expr_subqueries(expr: &Expr) -> Vec<&Query> {
    let mut out = Vec::new();
    fn walk<'e>(expr: &'e Expr, out: &mut Vec<&'e Query>) {
        match expr {
            Expr::Exists { subquery, .. } | Expr::Subquery(subquery) => out.push(subquery),
            Expr::InSubquery { expr, subquery, .. } => {
                walk(expr, out);
                out.push(subquery);
            }
            Expr::BinaryOp { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            Expr::UnaryOp { expr, .. } => walk(expr, out),
            Expr::Function { args, .. } => args.iter().for_each(|a| walk(a, out)),
            Expr::Case {
                operand,
                conditions,
                else_result,
            } => {
                if let Some(op) = operand {
                    walk(op, out);
                }
                for (c, r) in conditions {
                    walk(c, out);
                    walk(r, out);
                }
                if let Some(e) = else_result {
                    walk(e, out);
                }
            }
            Expr::InList { expr, list, .. } => {
                walk(expr, out);
                list.iter().for_each(|e| walk(e, out));
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk(expr, out);
                walk(low, out);
                walk(high, out);
            }
            Expr::IsNull { expr, .. } => walk(expr, out),
            Expr::Like { expr, pattern, .. } => {
                walk(expr, out);
                walk(pattern, out);
            }
            Expr::Cast { expr, .. } | Expr::Nested(expr) => walk(expr, out),
            Expr::Identifier(_)
            | Expr::CompoundIdentifier(_)
            | Expr::Literal(_)
            | Expr::Wildcard => {}
        }
    }
    walk(expr, &mut out);
    out
}

/// Result of analyzing a join predicate for hash-joinable keys.
#[derive(Debug, Clone)]
pub struct JoinKeyExtraction<'a> {
    /// `col = col` conjuncts: the two column references plus the original
    /// conjunct (kept so callers that cannot use a pair can fall back to
    /// evaluating it).
    pub pairs: Vec<(ColumnRef, ColumnRef, &'a Expr)>,
    /// Conjuncts that are not bare column equalities.
    pub residual: Vec<&'a Expr>,
}

/// Extract candidate equi-join keys from a join predicate: every top-level
/// conjunct of the form `<column> = <column>`. Which side each column
/// belongs to is left to the caller (the planner resolves the references
/// against its relation bindings).
pub fn equi_join_keys(on: &Expr) -> JoinKeyExtraction<'_> {
    let mut extraction = JoinKeyExtraction {
        pairs: Vec::new(),
        residual: Vec::new(),
    };
    for conjunct in split_conjuncts(on) {
        if let Expr::BinaryOp {
            left,
            op: BinaryOperator::Eq,
            right,
        } = conjunct
        {
            if let (Some(l), Some(r)) = (column_ref(left), column_ref(right)) {
                extraction.pairs.push((l, r, conjunct));
                continue;
            }
        }
        extraction.residual.push(conjunct);
    }
    extraction
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn analyze_sql(sql: &str) -> QueryAnalysis {
        let query = parse_query(sql).expect("parse");
        analyze_query_text(&query, sql)
    }

    #[test]
    fn flat_query_statistics() {
        let a = analyze_sql("SELECT name, gpa FROM students WHERE gpa > 3.5");
        assert_eq!(a.table_count(), 1);
        assert_eq!(a.column_count(), 2);
        assert_eq!(a.aggregate_count, 0);
        assert_eq!(a.nesting_depth, 0);
        assert_eq!(a.predicate_count, 1);
        assert!(!a.has_group_by);
        assert!(a.token_count > 5);
        assert!(a.keyword_count >= 3); // SELECT FROM WHERE
    }

    #[test]
    fn aggregation_and_grouping() {
        let a = analyze_sql(
            "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept HAVING AVG(salary) > 100 ORDER BY dept LIMIT 5",
        );
        assert_eq!(a.aggregate_count, 3);
        assert_eq!(a.aggregate_functions, vec!["COUNT", "AVG", "AVG"]);
        assert!(a.has_group_by);
        assert!(a.has_order_by);
        assert!(a.has_limit);
    }

    #[test]
    fn nesting_depth_counts_levels() {
        let a = analyze_sql(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u WHERE c IN (SELECT d FROM v))",
        );
        assert_eq!(a.nesting_depth, 2);
        assert_eq!(a.subquery_count, 2);
        assert_eq!(a.table_count(), 3);
    }

    #[test]
    fn cte_counts_as_nesting() {
        let a = analyze_sql("WITH c AS (SELECT a FROM t) SELECT * FROM c");
        assert_eq!(a.cte_count, 1);
        assert_eq!(a.nesting_depth, 1);
        // CTE name `c` is referenced in FROM but `t` is the only base table...
        // `c` appears as a table reference too; both are recorded since the
        // analyzer does not resolve CTE scope. The caller can subtract CTE names.
        assert!(a.tables.contains("T"));
    }

    #[test]
    fn join_counting() {
        let a = analyze_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y JOIN d ON d.z = c.z",
        );
        assert_eq!(a.join_count, 3);
        assert_eq!(a.table_count(), 4);
        assert_eq!(a.predicate_count, 3);
    }

    #[test]
    fn literal_terms_are_collected() {
        let a = analyze_sql(
            "SELECT * FROM terms WHERE term_name = 'J-term' AND street_type = 'STREET'",
        );
        assert_eq!(a.literal_terms, vec!["J-term", "STREET"]);
    }

    #[test]
    fn set_operations_counted() {
        let a = analyze_sql("SELECT a FROM t UNION SELECT a FROM u INTERSECT SELECT a FROM v");
        assert_eq!(a.set_operation_count, 2);
    }

    #[test]
    fn distinct_detected() {
        let a = analyze_sql("SELECT DISTINCT a FROM t");
        assert!(a.has_distinct);
        let b = analyze_sql("SELECT COUNT(DISTINCT a) FROM t");
        assert!(!b.has_distinct); // DISTINCT inside aggregate is not SELECT DISTINCT
        assert_eq!(b.aggregate_count, 1);
    }

    #[test]
    fn difficulty_grows_with_complexity() {
        let simple = analyze_sql("SELECT a FROM t");
        let complex = analyze_sql(
            "WITH x AS (SELECT dept, COUNT(*) AS n FROM emp JOIN dept ON emp.d = dept.id GROUP BY dept) SELECT * FROM x WHERE n > (SELECT AVG(n) FROM x)",
        );
        assert!(complex.difficulty_score() > simple.difficulty_score() * 2.0);
    }

    #[test]
    fn analyze_uses_canonical_rendering() {
        let q = parse_query("SELECT   a    FROM    t").unwrap();
        let a = analyze(&q);
        assert_eq!(a.token_count, 4);
    }

    #[test]
    fn columns_deduplicated_case_insensitively() {
        let a = analyze_sql("SELECT Name, NAME, name FROM t WHERE name = 'x'");
        assert_eq!(a.column_count(), 1);
    }

    fn parse_where(sql: &str) -> Expr {
        parse_query(sql)
            .unwrap()
            .top_select()
            .unwrap()
            .selection
            .clone()
            .unwrap()
    }

    #[test]
    fn split_conjuncts_flattens_and_tree() {
        let e = parse_where("SELECT 1 FROM t WHERE a = 1 AND (b = 2 AND c > 3) AND d < 4");
        let conjuncts = split_conjuncts(&e);
        assert_eq!(conjuncts.len(), 4);
        // OR is not split.
        let e2 = parse_where("SELECT 1 FROM t WHERE a = 1 OR b = 2");
        assert_eq!(split_conjuncts(&e2).len(), 1);
    }

    #[test]
    fn column_ref_unwraps_nesting_and_qualifiers() {
        let cr = column_ref(&Expr::qcol("t", "x")).unwrap();
        assert_eq!(cr.normalized_qualifier(), Some("T".into()));
        assert_eq!(cr.normalized_column(), "X");
        let bare = column_ref(&Expr::col("y")).unwrap();
        assert_eq!(bare.qualifier, None);
        let nested = column_ref(&Expr::Nested(Box::new(Expr::col("z")))).unwrap();
        assert_eq!(nested.normalized_column(), "Z");
        assert!(column_ref(&Expr::number(1)).is_none());
    }

    #[test]
    fn equi_join_keys_separates_pairs_from_residual() {
        let on =
            parse_where("SELECT 1 FROM t WHERE a.x = b.y AND a.k = b.k AND a.z > 3 AND a.w = 1");
        let extraction = equi_join_keys(&on);
        assert_eq!(extraction.pairs.len(), 2);
        assert_eq!(extraction.pairs[0].0.normalized_column(), "X");
        assert_eq!(
            extraction.pairs[0].1.normalized_qualifier(),
            Some("B".into())
        );
        // `a.z > 3` (not Eq) and `a.w = 1` (literal side) are residual.
        assert_eq!(extraction.residual.len(), 2);
    }

    #[test]
    fn collect_column_refs_skips_subqueries() {
        let e =
            parse_where("SELECT 1 FROM t WHERE a + b > 1 AND c IN (SELECT d FROM u WHERE e = 1)");
        let mut refs = Vec::new();
        collect_column_refs(&e, &mut refs);
        let names: Vec<String> = refs.iter().map(|r| r.normalized_column()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
        let subs: Vec<_> = split_conjuncts(&e)
            .into_iter()
            .flat_map(expr_subqueries)
            .collect();
        assert_eq!(subs.len(), 1);
    }
}
