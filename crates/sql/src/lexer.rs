//! Hand-written SQL lexer.
//!
//! The lexer converts raw SQL text into a vector of [`Token`]s. It supports
//! the SQL subset used across the BenchPress reproduction: identifiers
//! (unquoted and double-quoted), numeric and string literals, comments
//! (`--` line comments and `/* ... */` block comments), and the usual
//! operators and punctuation.

use crate::error::{SqlError, SqlResult};
use crate::token::{Keyword, Token};

/// Streaming tokenizer over a SQL string.
pub struct Lexer<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over the given SQL text.
    pub fn new(sql: &'a str) -> Self {
        Lexer {
            input: sql.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the full input, returning all tokens in order.
    pub fn tokenize(mut self) -> SqlResult<Vec<Token>> {
        let mut tokens = Vec::new();
        while let Some(tok) = self.next_token()? {
            tokens.push(tok);
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.input.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace_and_comments(&mut self) -> SqlResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(SqlError::lexer("unterminated block comment", start))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> SqlResult<Option<Token>> {
        self.skip_whitespace_and_comments()?;
        let start = self.pos;
        let c = match self.peek() {
            Some(c) => c,
            None => return Ok(None),
        };

        let token = match c {
            b'(' => {
                self.bump();
                Token::LeftParen
            }
            b')' => {
                self.bump();
                Token::RightParen
            }
            b',' => {
                self.bump();
                Token::Comma
            }
            b'.' => {
                self.bump();
                Token::Dot
            }
            b';' => {
                self.bump();
                Token::Semicolon
            }
            b'*' => {
                self.bump();
                Token::Star
            }
            b'+' => {
                self.bump();
                Token::Plus
            }
            b'-' => {
                self.bump();
                Token::Minus
            }
            b'/' => {
                self.bump();
                Token::Slash
            }
            b'%' => {
                self.bump();
                Token::Percent
            }
            b'=' => {
                self.bump();
                Token::Eq
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::NotEq
                } else {
                    return Err(SqlError::lexer("expected '=' after '!'", start));
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Token::LtEq
                    }
                    Some(b'>') => {
                        self.bump();
                        Token::NotEq
                    }
                    _ => Token::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::GtEq
                } else {
                    Token::Gt
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Token::Concat
                } else {
                    return Err(SqlError::lexer("expected '|' after '|'", start));
                }
            }
            b'\'' => self.lex_string(start)?,
            b'"' => self.lex_quoted_identifier(start)?,
            c if c.is_ascii_digit() => self.lex_number(),
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_word(),
            other => {
                return Err(SqlError::lexer(
                    format!("unexpected character '{}'", other as char),
                    start,
                ))
            }
        };
        Ok(Some(token))
    }

    fn lex_string(&mut self, start: usize) -> SqlResult<Token> {
        self.bump(); // opening quote
        let mut value = Vec::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // '' is an escaped quote inside a string literal.
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        value.push(b'\'');
                    } else {
                        return Ok(Token::StringLiteral(utf8_run(value)));
                    }
                }
                Some(c) => value.push(c),
                None => return Err(SqlError::lexer("unterminated string literal", start)),
            }
        }
    }

    fn lex_quoted_identifier(&mut self, start: usize) -> SqlResult<Token> {
        self.bump(); // opening quote
        let mut value = Vec::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        value.push(b'"');
                    } else {
                        return Ok(Token::Identifier {
                            value: utf8_run(value),
                            quoted: true,
                        });
                    }
                }
                Some(c) => value.push(c),
                None => return Err(SqlError::lexer("unterminated quoted identifier", start)),
            }
        }
    }

    fn lex_number(&mut self) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Scientific notation, e.g. 1e6 or 2.5E-3.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut lookahead = 1;
            if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                lookahead = 2;
            }
            if matches!(self.peek_at(lookahead), Some(c) if c.is_ascii_digit()) {
                self.pos += lookahead;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .expect("number slice is ascii")
            .to_string();
        Token::Number(text)
    }

    fn lex_word(&mut self) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'$')
        {
            self.pos += 1;
        }
        let word = std::str::from_utf8(&self.input[start..self.pos])
            .expect("word slice is ascii")
            .to_string();
        match Keyword::from_word(&word) {
            Some(kw) => Token::Keyword(kw),
            None => Token::Identifier {
                value: word,
                quoted: false,
            },
        }
    }
}

/// Reassemble bytes collected from inside a quoted region into a `String`.
/// The input SQL is a `&str` (valid UTF-8) and quoting only ever splits it
/// at ASCII quote bytes — which cannot occur inside a multi-byte sequence —
/// so the collected run is always valid UTF-8. (The old per-byte `as char`
/// conversion decoded multi-byte characters as Latin-1 mojibake, corrupting
/// non-ASCII string literals before LIKE ever saw them.)
fn utf8_run(bytes: Vec<u8>) -> String {
    String::from_utf8(bytes).expect("quoted run splits the input at ASCII quotes")
}

/// Tokenize a SQL string in one call.
pub fn tokenize(sql: &str) -> SqlResult<Vec<Token>> {
    Lexer::new(sql).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<Token> {
        tokenize(sql).expect("tokenize")
    }

    #[test]
    fn lexes_simple_select() {
        let toks = kinds("SELECT a, b FROM t WHERE a = 1;");
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(
            toks[1],
            Token::Identifier {
                value: "a".into(),
                quoted: false
            }
        );
        assert_eq!(toks.last(), Some(&Token::Semicolon));
        assert_eq!(toks.len(), 11);
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("a <= b >= c <> d != e || f");
        assert!(toks.contains(&Token::LtEq));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Concat));
        assert_eq!(toks.iter().filter(|t| **t == Token::NotEq).count(), 2);
    }

    #[test]
    fn lexes_string_with_escaped_quote() {
        let toks = kinds("SELECT 'it''s'");
        assert_eq!(toks[1], Token::StringLiteral("it's".into()));
    }

    #[test]
    fn lexes_multibyte_utf8_in_strings_and_quoted_identifiers() {
        // Regression: bytes inside quotes were decoded one-by-one as
        // Latin-1, turning '魚と米' into mojibake before LIKE ever ran.
        let toks = kinds("SELECT 'caf\u{e9} 魚と米'");
        assert_eq!(toks[1], Token::StringLiteral("café 魚と米".into()));
        let toks = kinds(r#"SELECT "colonne réservée" FROM t"#);
        assert_eq!(
            toks[1],
            Token::Identifier {
                value: "colonne réservée".into(),
                quoted: true
            }
        );
    }

    #[test]
    fn lexes_quoted_identifier() {
        let toks = kinds(r#"SELECT "Weird Column" FROM t"#);
        assert_eq!(
            toks[1],
            Token::Identifier {
                value: "Weird Column".into(),
                quoted: true
            }
        );
    }

    #[test]
    fn lexes_numbers() {
        let toks = kinds("SELECT 1, 2.5, 10e3, 1.5E-2");
        let numbers: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Number(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(numbers, vec!["1", "2.5", "10e3", "1.5E-2"]);
    }

    #[test]
    fn skips_line_and_block_comments() {
        let toks = kinds("SELECT a -- trailing\n, b /* block\ncomment */ FROM t");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t, Token::Identifier { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(tokenize("SELECT 1 /* nope").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = tokenize("SELECT #a").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = kinds("select * from T");
        assert_eq!(toks[0], Token::Keyword(Keyword::Select));
        assert_eq!(toks[2], Token::Keyword(Keyword::From));
    }

    #[test]
    fn empty_input_gives_no_tokens() {
        assert!(kinds("").is_empty());
        assert!(kinds("   \n\t ").is_empty());
        assert!(kinds("-- only a comment").is_empty());
    }
}
