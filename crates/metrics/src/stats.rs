//! Small summary-statistics helpers used by the study harness and the
//! table/figure generators.

use serde::{Deserialize, Serialize};

/// Mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let variance = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    variance.sqrt()
}

/// Median (0 for empty input).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Percentile via nearest-rank (p in 0..=100).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// A reusable summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Summary {
            count: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min: sorted[0],
            median: median(values),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Half-width of an approximate 95% confidence interval for the mean
    /// (normal approximation).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_std() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&values) - 5.0).abs() < 1e-9);
        assert!((std_dev(&values) - 2.0).abs() < 1e-9);
        assert!((median(&values) - 4.5).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(Summary::of(&[]).count, 0);
    }

    #[test]
    fn single_value() {
        assert_eq!(mean(&[3.0]), 3.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
    }

    #[test]
    fn percentiles() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&values, 50.0), 50.0);
        assert_eq!(percentile(&values, 95.0), 95.0);
        assert_eq!(percentile(&values, 100.0), 100.0);
        assert_eq!(percentile(&values, 1.0), 1.0);
    }

    #[test]
    fn summary_and_ci() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let summary = Summary::of(&values);
        assert_eq!(summary.count, 50);
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 49.0);
        assert!(summary.ci95_half_width() > 0.0);
        assert!(Summary::of(&[1.0]).ci95_half_width() == 0.0);
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }
}
