//! Workload- and database-level complexity metrics (Tables 1 and 2 of the
//! paper), including the relative-difference presentation the paper uses
//! ("↓80.8%" means 80.8% lower than the Beaver data-warehouse baseline).

use bp_sql::QueryAnalysis;
use bp_storage::DatabaseProfile;
use serde::{Deserialize, Serialize};

/// Mean query-level complexity of a workload (one row of Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryComplexity {
    /// Workload name (benchmark name).
    pub workload: String,
    /// Mean number of structural SQL keywords per query.
    pub keywords: f64,
    /// Mean number of lexical tokens per query.
    pub tokens: f64,
    /// Mean number of distinct tables per query.
    pub tables: f64,
    /// Mean number of distinct columns per query.
    pub columns: f64,
    /// Mean number of aggregate calls per query.
    pub aggregations: f64,
    /// Mean nesting depth per query.
    pub nestings: f64,
    /// Number of queries summarized.
    pub query_count: usize,
}

impl QueryComplexity {
    /// Aggregate per-query analyses into workload means.
    pub fn from_analyses(workload: impl Into<String>, analyses: &[QueryAnalysis]) -> Self {
        let n = analyses.len();
        let mean = |f: &dyn Fn(&QueryAnalysis) -> f64| -> f64 {
            if n == 0 {
                0.0
            } else {
                analyses.iter().map(f).sum::<f64>() / n as f64
            }
        };
        QueryComplexity {
            workload: workload.into(),
            keywords: mean(&|a| a.keyword_count as f64),
            tokens: mean(&|a| a.token_count as f64),
            tables: mean(&|a| a.table_count() as f64),
            columns: mean(&|a| a.column_count() as f64),
            aggregations: mean(&|a| a.aggregate_count as f64),
            nestings: mean(&|a| a.nesting_depth as f64),
            query_count: n,
        }
    }

    /// The six metric values in Table 1 column order.
    pub fn as_row(&self) -> [f64; 6] {
        [
            self.keywords,
            self.tokens,
            self.tables,
            self.columns,
            self.aggregations,
            self.nestings,
        ]
    }

    /// Relative differences versus a baseline workload, in Table 1 column
    /// order. Positive = higher than baseline.
    pub fn relative_to(&self, baseline: &QueryComplexity) -> [RelativeDelta; 6] {
        let own = self.as_row();
        let base = baseline.as_row();
        std::array::from_fn(|i| RelativeDelta::new(base[i], own[i]))
    }
}

/// Data-level complexity of a database (one row of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DataComplexity {
    /// Dataset name.
    pub dataset: String,
    /// Mean columns per table.
    pub columns_per_table: f64,
    /// Mean rows per table.
    pub rows_per_table: f64,
    /// Number of tables per database.
    pub tables_per_db: f64,
    /// Mean column uniqueness (distinct / rows), as a fraction 0..1.
    pub uniqueness: f64,
    /// Mean sparsity (fraction of NULL cells), 0..1.
    pub sparsity: f64,
    /// Number of distinct data types across the database.
    pub data_types: f64,
}

impl DataComplexity {
    /// Build from a database profile.
    pub fn from_profile(profile: &DatabaseProfile) -> Self {
        DataComplexity {
            dataset: profile.name.clone(),
            columns_per_table: profile.avg_columns_per_table,
            rows_per_table: profile.avg_rows_per_table,
            tables_per_db: profile.table_count as f64,
            uniqueness: profile.uniqueness,
            sparsity: profile.sparsity,
            data_types: profile.data_type_count as f64,
        }
    }

    /// The six metric values in Table 2 column order.
    pub fn as_row(&self) -> [f64; 6] {
        [
            self.columns_per_table,
            self.rows_per_table,
            self.tables_per_db,
            self.uniqueness,
            self.sparsity,
            self.data_types,
        ]
    }

    /// Relative differences versus a baseline dataset, in Table 2 column order.
    pub fn relative_to(&self, baseline: &DataComplexity) -> [RelativeDelta; 6] {
        let own = self.as_row();
        let base = baseline.as_row();
        std::array::from_fn(|i| RelativeDelta::new(base[i], own[i]))
    }
}

/// A relative difference versus a baseline, as displayed in the paper's
/// Tables 1 and 2 (e.g. `↓80.8%`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelativeDelta {
    /// Baseline value.
    pub baseline: f64,
    /// Observed value.
    pub value: f64,
}

impl RelativeDelta {
    /// Create a delta from baseline and observed values.
    pub fn new(baseline: f64, value: f64) -> Self {
        RelativeDelta { baseline, value }
    }

    /// Percentage change relative to the baseline (positive = increase).
    /// Returns 0 when the baseline is zero and the value is zero, and 100 *
    /// value when the baseline is zero but the value is not (matching the
    /// paper's "↑100%" convention for appearing-from-zero quantities).
    pub fn percent(&self) -> f64 {
        if self.baseline == 0.0 {
            if self.value == 0.0 {
                0.0
            } else {
                100.0
            }
        } else {
            (self.value - self.baseline) / self.baseline * 100.0
        }
    }

    /// Whether the observed value decreased relative to the baseline.
    pub fn is_decrease(&self) -> bool {
        self.percent() < 0.0
    }

    /// Render like the paper: `↓80.8%` or `↑62.2%`.
    pub fn arrow_notation(&self) -> String {
        let pct = self.percent();
        if pct < 0.0 {
            format!("↓{:.1}%", pct.abs())
        } else if pct > 0.0 {
            format!("↑{:.1}%", pct)
        } else {
            "0.0%".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_sql::{analyze, parse_query};

    fn analyses(sqls: &[&str]) -> Vec<QueryAnalysis> {
        sqls.iter()
            .map(|s| analyze(&parse_query(s).unwrap()))
            .collect()
    }

    #[test]
    fn query_complexity_means() {
        let c = QueryComplexity::from_analyses(
            "demo",
            &analyses(&[
                "SELECT a FROM t",
                "SELECT a, b FROM t JOIN u ON t.id = u.id WHERE a > 1",
            ]),
        );
        assert_eq!(c.query_count, 2);
        assert!((c.tables - 1.5).abs() < 1e-9);
        assert!(c.tokens > 3.0);
        assert_eq!(c.nestings, 0.0);
    }

    #[test]
    fn empty_workload_is_zeroed() {
        let c = QueryComplexity::from_analyses("empty", &[]);
        assert_eq!(c.query_count, 0);
        assert_eq!(c.as_row(), [0.0; 6]);
    }

    #[test]
    fn relative_delta_percentages() {
        assert!((RelativeDelta::new(100.0, 20.0).percent() + 80.0).abs() < 1e-9);
        assert!((RelativeDelta::new(50.0, 75.0).percent() - 50.0).abs() < 1e-9);
        assert_eq!(RelativeDelta::new(0.0, 0.0).percent(), 0.0);
        assert_eq!(RelativeDelta::new(0.0, 3.0).percent(), 100.0);
    }

    #[test]
    fn arrow_notation_matches_paper_style() {
        assert_eq!(RelativeDelta::new(100.0, 19.2).arrow_notation(), "↓80.8%");
        assert_eq!(RelativeDelta::new(100.0, 162.2).arrow_notation(), "↑62.2%");
        assert_eq!(RelativeDelta::new(5.0, 5.0).arrow_notation(), "0.0%");
    }

    #[test]
    fn complexity_relative_rows() {
        let beaver = QueryComplexity {
            workload: "beaver".into(),
            keywords: 15.6,
            tokens: 99.8,
            tables: 4.2,
            columns: 11.9,
            aggregations: 5.5,
            nestings: 2.05,
            query_count: 100,
        };
        let spider = QueryComplexity {
            workload: "spider".into(),
            keywords: 3.0,
            tokens: 18.5,
            tables: 1.5,
            columns: 2.9,
            aggregations: 0.9,
            nestings: 1.1,
            query_count: 100,
        };
        let deltas = spider.relative_to(&beaver);
        assert!(deltas.iter().all(|d| d.is_decrease()));
        assert!(deltas[0].percent() < -75.0);
    }

    #[test]
    fn data_complexity_from_profile() {
        use bp_sql::DataType;
        use bp_storage::{Column, Database, TableSchema};
        let mut db = Database::new("demo");
        db.create_table(TableSchema::new(
            "t",
            vec![
                Column::new("a", DataType::Integer),
                Column::new("b", DataType::Text),
            ],
        ))
        .unwrap();
        db.insert_into(
            "t",
            vec![vec![1.into(), "x".into()], vec![2.into(), "x".into()]],
        )
        .unwrap();
        let profile = bp_storage::profile_database(&db);
        let dc = DataComplexity::from_profile(&profile);
        assert_eq!(dc.tables_per_db, 1.0);
        assert_eq!(dc.columns_per_table, 2.0);
        assert_eq!(dc.rows_per_table, 2.0);
        assert!(dc.uniqueness > 0.7 && dc.uniqueness < 0.8);
    }
}
