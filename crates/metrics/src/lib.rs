//! # bp-metrics — evaluation metrics for the BenchPress reproduction
//!
//! The metrics used throughout the paper's evaluation:
//!
//! * [`textsim`] — exact match, BLEU, ROUGE, Jaccard (review/export step).
//! * [`coverage`] — annotation accuracy via SQL-component coverage (Table 3).
//! * [`rubric`] — the 5-level backtranslation clarity rubric (Figure 4).
//! * [`complexity`] — query- and data-level complexity aggregation with the
//!   relative-delta presentation of Tables 1 and 2.
//! * [`stats`] — summary statistics shared by the study and bench harnesses.

#![warn(missing_docs)]

pub mod complexity;
pub mod coverage;
pub mod rubric;
pub mod stats;
pub mod textsim;

pub use complexity::{DataComplexity, QueryComplexity, RelativeDelta};
pub use coverage::{
    coverage, coverage_sql, ComponentCheck, ComponentKind, CoverageReport,
    DEFAULT_ACCURACY_THRESHOLD,
};
pub use rubric::{grade, grade_cached, grade_sql, ClarityHistogram, ClarityLevel, RubricOutcome};
pub use stats::{mean, median, percentile, std_dev, Summary};
pub use textsim::{bleu, exact_match, jaccard, rouge_l, rouge_n};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// BLEU and ROUGE are bounded in [0, 1] and exact self-match scores 1.
        #[test]
        fn text_metrics_bounded(a in "[a-z ]{1,60}", b in "[a-z ]{1,60}") {
            let scores = [bleu(&a, &b), rouge_n(&a, &b, 1), rouge_n(&a, &b, 2), rouge_l(&a, &b), jaccard(&a, &b)];
            for s in scores {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s), "score out of range: {s}");
            }
        }

        /// Self-similarity of a non-trivial sentence is 1 for ROUGE-L and Jaccard.
        #[test]
        fn self_similarity(a in "[a-z]{2,10}( [a-z]{2,10}){1,8}") {
            prop_assert!((rouge_l(&a, &a) - 1.0).abs() < 1e-9);
            prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-9);
            prop_assert!(exact_match(&a, &a));
        }

        /// Coverage score is always within [0, 1] regardless of description.
        #[test]
        fn coverage_bounded(desc in "[a-zA-Z ]{0,120}") {
            let report = coverage_sql(
                "SELECT dept, COUNT(*) FROM students WHERE gpa > 3.0 GROUP BY dept ORDER BY 2 DESC LIMIT 3",
                &desc,
            ).unwrap();
            let s = report.score();
            prop_assert!((0.0..=1.0).contains(&s));
        }

        /// Relative deltas invert correctly: a 50% decrease from the baseline
        /// never reports as an increase.
        #[test]
        fn relative_delta_sign(base in 0.1f64..1e6, factor in 0.01f64..0.99) {
            let delta = RelativeDelta::new(base, base * factor);
            prop_assert!(delta.is_decrease());
            prop_assert!(delta.arrow_notation().starts_with('↓'));
        }

        /// Summary invariants: min <= median <= max and mean within [min, max].
        #[test]
        fn summary_invariants(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = Summary::of(&values);
            prop_assert!(s.min <= s.median + 1e-9);
            prop_assert!(s.median <= s.max + 1e-9);
            prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        }
    }
}
