//! Annotation-accuracy scoring by SQL-component coverage.
//!
//! The paper measures annotation accuracy by inspecting each NL description
//! and checking "whether key SQL components — such as column selections,
//! calculations (e.g., aggregations), and grouping or ordering operations —
//! were clearly and distinguishably described" (§5.2). This module automates
//! that check: the SQL query is decomposed into components, each component
//! is given a set of acceptable evidence phrases (column-name parts,
//! aggregation synonyms, grouping/ordering cues, filter literals), and the
//! description is scored by the fraction of components it covers.

use bp_sql::{Expr, Query, Select, SelectItem, SetExpr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The kind of SQL component being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentKind {
    /// A table the query reads from.
    Table,
    /// A column in the projection.
    SelectedColumn,
    /// An aggregate calculation.
    Aggregation,
    /// A filter predicate.
    Filter,
    /// Grouping.
    Grouping,
    /// Ordering.
    Ordering,
    /// A row-limit.
    Limit,
}

/// One component check: the component, its evidence phrases, and whether the
/// description covered it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentCheck {
    /// Component kind.
    pub kind: ComponentKind,
    /// Human-readable label (e.g. the column name or aggregate call).
    pub label: String,
    /// Evidence phrases, any of which counts as coverage.
    pub evidence: Vec<String>,
    /// Whether any evidence phrase appeared in the description.
    pub covered: bool,
}

/// The full coverage report for one (SQL, description) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Per-component results.
    pub components: Vec<ComponentCheck>,
}

impl CoverageReport {
    /// Fraction of components covered (1.0 when there are no components).
    pub fn score(&self) -> f64 {
        if self.components.is_empty() {
            return 1.0;
        }
        let covered = self.components.iter().filter(|c| c.covered).count();
        covered as f64 / self.components.len() as f64
    }

    /// Whether the description is "accurate" under the given coverage
    /// threshold (the user-study scoring uses 0.75).
    pub fn is_accurate(&self, threshold: f64) -> bool {
        self.score() >= threshold
    }

    /// Components that were not covered (useful feedback for annotators).
    pub fn missing(&self) -> Vec<&ComponentCheck> {
        self.components.iter().filter(|c| !c.covered).collect()
    }
}

/// The default accuracy threshold used by the study harness.
pub const DEFAULT_ACCURACY_THRESHOLD: f64 = 0.75;

fn split_ident(word: &str) -> Vec<String> {
    word.split(['_', '.'])
        .filter(|p| !p.is_empty())
        .map(|p| p.to_lowercase())
        .collect()
}

fn normalize_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push(' ');
    for c in text.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
        } else {
            out.push(' ');
        }
    }
    out.push(' ');
    // Collapse runs of spaces.
    let mut collapsed = String::with_capacity(out.len());
    let mut last_space = false;
    for c in out.chars() {
        if c == ' ' {
            if !last_space {
                collapsed.push(c);
            }
            last_space = true;
        } else {
            collapsed.push(c);
            last_space = false;
        }
    }
    collapsed
}

fn description_mentions(normalized_description: &str, phrase: &str) -> bool {
    let phrase_norm = normalize_text(phrase);
    let trimmed = phrase_norm.trim();
    if trimmed.is_empty() {
        return false;
    }
    // Multi-word phrases: plain substring containment on normalized text.
    if trimmed.contains(' ') {
        return normalized_description.contains(&format!(" {trimmed} "))
            || normalized_description.contains(&format!(" {trimmed}s "));
    }
    // Single words: word match with light morphological slack (plurals and
    // shared prefixes, so "dept" covers "department" and "name" covers
    // "names") while keeping short tokens like "id" strictly exact.
    normalized_description.split_whitespace().any(|word| {
        word == trimmed
            || word == format!("{trimmed}s")
            || word == format!("{trimmed}es")
            || (trimmed.len() >= 4 && word.starts_with(trimmed))
            || (word.len() >= 4 && trimmed.starts_with(word) && trimmed.len() <= word.len() + 3)
    })
}

/// Expansions for abbreviations that enterprise schemas use constantly but
/// natural language spells out ("DEPT" columns described as "department").
fn expand_abbreviation(part: &str) -> Option<&'static str> {
    Some(match part {
        "dept" => "department",
        "avg" => "average",
        "qty" => "quantity",
        "num" => "number",
        "addr" => "address",
        "bldg" => "building",
        "emp" => "employee",
        "acad" => "academic",
        "amt" => "amount",
        "pct" => "percent",
        "desc" => "description",
        "info" => "information",
        "org" => "organization",
        "mgr" => "manager",
        _ => return None,
    })
}

fn column_evidence(column: &str) -> Vec<String> {
    let mut evidence = vec![column.to_lowercase().replace('_', " ")];
    let parts = split_ident(column);
    for part in &parts {
        if let Some(expanded) = expand_abbreviation(part) {
            evidence.push(expanded.to_string());
        }
    }
    // The most content-bearing part of a compound name (skip generic
    // suffixes like key/id/name/code when something better exists).
    let generic: BTreeSet<&str> = ["key", "id", "name", "code", "num", "no", "flag"]
        .into_iter()
        .collect();
    let content: Vec<&String> = parts
        .iter()
        .filter(|p| !generic.contains(p.as_str()))
        .collect();
    if !content.is_empty() {
        for part in content {
            if part.len() > 2 {
                evidence.push(part.clone());
            }
        }
    } else {
        evidence.extend(parts);
    }
    evidence
}

fn aggregate_evidence(function: &str, argument: Option<&str>) -> (String, Vec<String>) {
    let func_upper = function.to_ascii_uppercase();
    let mut evidence: Vec<String> = match func_upper.as_str() {
        "COUNT" => vec!["count", "number of", "how many", "total number"],
        "SUM" => vec!["sum", "total", "combined", "overall"],
        "AVG" => vec!["average", "mean", "avg"],
        "MAX" => vec![
            "max", "maximum", "highest", "largest", "most", "latest", "greatest", "top",
        ],
        "MIN" => vec![
            "min", "minimum", "lowest", "smallest", "fewest", "earliest", "least",
        ],
        _ => vec!["compute"],
    }
    .into_iter()
    .map(|s| s.to_string())
    .collect();
    let label = match argument {
        Some(arg) => format!("{func_upper}({arg})"),
        None => format!("{func_upper}(*)"),
    };
    if let Some(arg) = argument {
        for part in split_ident(arg) {
            if part.len() > 3 {
                evidence.push(part);
            }
        }
    }
    (label, evidence)
}

struct ComponentCollector {
    components: Vec<(ComponentKind, String, Vec<String>)>,
}

impl ComponentCollector {
    fn new() -> Self {
        ComponentCollector {
            components: Vec::new(),
        }
    }

    fn push(&mut self, kind: ComponentKind, label: String, evidence: Vec<String>) {
        // Deduplicate identical components (same kind + label).
        if self
            .components
            .iter()
            .any(|(k, l, _)| *k == kind && *l == label)
        {
            return;
        }
        self.components.push((kind, label, evidence));
    }

    fn collect_query(&mut self, query: &Query) {
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                self.collect_query(&cte.query);
            }
        }
        self.collect_set_expr(&query.body);
        if !query.order_by.is_empty() {
            self.push(
                ComponentKind::Ordering,
                "ORDER BY".to_string(),
                [
                    "order",
                    "sorted",
                    "sort",
                    "ranked",
                    "descending",
                    "ascending",
                    "highest",
                    "lowest",
                    "top",
                    "most",
                    "fewest",
                    "largest",
                    "alphabetical",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            );
        }
        if query.limit.is_some() {
            self.push(
                ComponentKind::Limit,
                "LIMIT".to_string(),
                [
                    "top", "first", "only", "limit", "single", "one", "most", "highest", "best",
                    "largest",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            );
        }
    }

    fn collect_set_expr(&mut self, body: &SetExpr) {
        match body {
            SetExpr::Select(select) => self.collect_select(select),
            SetExpr::Query(q) => self.collect_query(q),
            SetExpr::SetOperation { left, right, .. } => {
                self.collect_set_expr(left);
                self.collect_set_expr(right);
            }
        }
    }

    fn collect_select(&mut self, select: &Select) {
        for twj in &select.from {
            self.collect_table_factor(&twj.relation);
            for join in &twj.joins {
                self.collect_table_factor(&join.relation);
            }
        }
        for item in &select.projection {
            match item {
                SelectItem::Expr { expr, alias } => {
                    self.collect_projection_expr(expr, alias.as_ref().map(|a| a.value.as_str()))
                }
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {}
            }
        }
        if let Some(selection) = &select.selection {
            self.collect_filter(selection);
        }
        if !select.group_by.is_empty() {
            let mut evidence: Vec<String> = ["per", "each", "every", "by", "group", "breakdown"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            for expr in &select.group_by {
                if let Some(name) = column_name(expr) {
                    evidence.extend(column_evidence(&name));
                }
            }
            self.push(ComponentKind::Grouping, "GROUP BY".to_string(), evidence);
        }
        if let Some(having) = &select.having {
            self.collect_filter(having);
        }
    }

    fn collect_table_factor(&mut self, factor: &bp_sql::TableFactor) {
        match factor {
            bp_sql::TableFactor::Table { name, .. } => {
                let base = name.base().value.clone();
                self.push(ComponentKind::Table, base.clone(), column_evidence(&base));
            }
            bp_sql::TableFactor::Derived { subquery, .. } => self.collect_query(subquery),
        }
    }

    fn collect_projection_expr(&mut self, expr: &Expr, alias: Option<&str>) {
        match expr {
            Expr::Identifier(_) | Expr::CompoundIdentifier(_) => {
                if let Some(name) = column_name(expr) {
                    let mut evidence = column_evidence(&name);
                    if let Some(alias) = alias {
                        evidence.extend(column_evidence(alias));
                    }
                    self.push(ComponentKind::SelectedColumn, name, evidence);
                }
            }
            Expr::Function { name, args, .. } if expr.is_aggregate_call() => {
                let arg_name = args.first().and_then(column_name);
                let (label, mut evidence) = aggregate_evidence(&name.value, arg_name.as_deref());
                if let Some(alias) = alias {
                    evidence.extend(column_evidence(alias));
                }
                self.push(ComponentKind::Aggregation, label, evidence);
            }
            Expr::Function { args, .. } => {
                for arg in args {
                    self.collect_projection_expr(arg, None);
                }
            }
            Expr::BinaryOp { left, right, .. } => {
                self.collect_projection_expr(left, None);
                self.collect_projection_expr(right, None);
            }
            Expr::Case { .. } => {
                // CASE expressions are described loosely; treat the alias as
                // the component if given.
                if let Some(alias) = alias {
                    self.push(
                        ComponentKind::SelectedColumn,
                        alias.to_string(),
                        column_evidence(alias),
                    );
                }
            }
            Expr::Subquery(q) => self.collect_query(q),
            Expr::Nested(inner) | Expr::Cast { expr: inner, .. } => {
                self.collect_projection_expr(inner, alias)
            }
            _ => {}
        }
    }

    fn collect_filter(&mut self, expr: &Expr) {
        match expr {
            Expr::BinaryOp { left, op, right } => {
                use bp_sql::BinaryOperator::*;
                match op {
                    And | Or => {
                        self.collect_filter(left);
                        self.collect_filter(right);
                    }
                    _ if op.is_comparison() => {
                        self.push_filter_component(left, right);
                    }
                    _ => {}
                }
            }
            Expr::Like { expr, pattern, .. } => self.push_filter_component(expr, pattern),
            Expr::Between { expr, .. } | Expr::IsNull { expr, .. } => {
                if let Some(name) = column_name(expr) {
                    self.push(
                        ComponentKind::Filter,
                        format!("filter on {name}"),
                        column_evidence(&name),
                    );
                }
            }
            Expr::InList { expr, list, .. } => {
                let mut evidence = Vec::new();
                if let Some(name) = column_name(expr) {
                    evidence.extend(column_evidence(&name));
                }
                for item in list {
                    if let Expr::Literal(bp_sql::Literal::String(s)) = item {
                        evidence.push(s.to_lowercase());
                    }
                }
                self.push(ComponentKind::Filter, format!("{expr}"), evidence);
            }
            Expr::InSubquery { expr, subquery, .. } => {
                // Membership tests over generic key columns (id/key) express a
                // join, which natural language rarely names explicitly; only
                // require coverage when the column carries content words.
                if let Some(name) = column_name(expr) {
                    let generic = ["id", "key", "code"];
                    let has_content = split_ident(&name)
                        .iter()
                        .any(|p| p.len() > 2 && !generic.contains(&p.as_str()));
                    if has_content {
                        self.push(
                            ComponentKind::Filter,
                            format!("membership on {name}"),
                            column_evidence(&name),
                        );
                    }
                }
                self.collect_query(subquery);
            }
            Expr::Exists { subquery, .. } => self.collect_query(subquery),
            Expr::UnaryOp { expr, .. } | Expr::Nested(expr) => self.collect_filter(expr),
            _ => {}
        }
    }

    fn push_filter_component(&mut self, left: &Expr, right: &Expr) {
        let mut literal_evidence = Vec::new();
        let mut column_side_evidence = Vec::new();
        let mut label_parts = Vec::new();
        for side in [left, right] {
            match side {
                Expr::Literal(bp_sql::Literal::String(s)) => {
                    literal_evidence.push(s.to_lowercase());
                    // Literal values are also often paraphrased word-by-word.
                    for part in split_ident(s) {
                        if part.len() > 2 {
                            literal_evidence.push(part.replace('-', " "));
                        }
                    }
                    label_parts.push(format!("'{s}'"));
                }
                Expr::Literal(bp_sql::Literal::Number(n)) => {
                    literal_evidence.push(n.clone());
                    label_parts.push(n.clone());
                }
                other => {
                    if let Some(name) = column_name(other) {
                        column_side_evidence.extend(column_evidence(&name));
                        label_parts.push(name);
                    } else if other.is_aggregate_call() {
                        if let Expr::Function { name, args, .. } = other {
                            let arg = args.first().and_then(column_name);
                            let (label, agg_evidence) =
                                aggregate_evidence(&name.value, arg.as_deref());
                            column_side_evidence.extend(agg_evidence);
                            label_parts.push(label);
                        }
                    }
                }
            }
        }
        // When the filter compares against a constant, the constant is what a
        // faithful description must mention; naming only the column does not
        // convey the filtering logic (e.g. "terms" vs "the J-term").
        let evidence = if literal_evidence.is_empty() {
            column_side_evidence
        } else {
            literal_evidence
        };
        if !evidence.is_empty() {
            self.push(ComponentKind::Filter, label_parts.join(" vs "), evidence);
        }
    }
}

fn column_name(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Identifier(i) => Some(i.value.clone()),
        Expr::CompoundIdentifier(parts) => parts.last().map(|p| p.value.clone()),
        Expr::Nested(inner) | Expr::Cast { expr: inner, .. } => column_name(inner),
        _ => None,
    }
}

/// Score a natural-language description against the SQL query it annotates.
pub fn coverage(query: &Query, description: &str) -> CoverageReport {
    let mut collector = ComponentCollector::new();
    collector.collect_query(query);
    let normalized = normalize_text(description);
    let components = collector
        .components
        .into_iter()
        .map(|(kind, label, evidence)| {
            let covered = evidence
                .iter()
                .any(|phrase| description_mentions(&normalized, phrase));
            ComponentCheck {
                kind,
                label,
                evidence,
                covered,
            }
        })
        .collect();
    CoverageReport { components }
}

/// Convenience wrapper that parses the SQL text first.
pub fn coverage_sql(sql: &str, description: &str) -> Result<CoverageReport, bp_sql::SqlError> {
    let query = bp_sql::parse_query(sql)?;
    Ok(coverage(&query, description))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_description_covers_all_components() {
        let report = coverage_sql(
            "SELECT dept, COUNT(*) AS n FROM students GROUP BY dept ORDER BY n DESC LIMIT 1",
            "For each department of students, count the number of students and report the department with the most students.",
        )
        .unwrap();
        assert!(report.score() > 0.9, "score was {}", report.score());
        assert!(report.is_accurate(DEFAULT_ACCURACY_THRESHOLD));
    }

    #[test]
    fn vague_description_scores_low() {
        let report = coverage_sql(
            "SELECT dept, COUNT(*) AS n FROM students WHERE gpa > 3.5 GROUP BY dept ORDER BY n DESC LIMIT 1",
            "Show some information about the database.",
        )
        .unwrap();
        assert!(report.score() < 0.5, "score was {}", report.score());
        assert!(!report.is_accurate(DEFAULT_ACCURACY_THRESHOLD));
        assert!(!report.missing().is_empty());
    }

    #[test]
    fn aggregation_synonyms_count_as_coverage() {
        let report = coverage_sql(
            "SELECT MAX(gpa) FROM students",
            "Report the highest GPA among students.",
        )
        .unwrap();
        assert_eq!(report.score(), 1.0);
        let report2 = coverage_sql(
            "SELECT AVG(salary) FROM employees",
            "What is the mean salary of employees?",
        )
        .unwrap();
        assert_eq!(report2.score(), 1.0);
    }

    #[test]
    fn filter_literals_must_be_mentioned() {
        let covered = coverage_sql(
            "SELECT name FROM terms WHERE term_name = 'J-term'",
            "List the names of terms for the J-term period.",
        )
        .unwrap();
        assert!(covered.score() > 0.9);
        let missing = coverage_sql(
            "SELECT name FROM terms WHERE term_name = 'J-term'",
            "List the names of all terms.",
        )
        .unwrap();
        assert!(missing.score() < 1.0);
        assert!(missing
            .missing()
            .iter()
            .any(|c| c.kind == ComponentKind::Filter));
    }

    #[test]
    fn compound_identifiers_are_matched_by_parts() {
        let report = coverage_sql(
            "SELECT MOIRA_LIST_NAME FROM MOIRA_LIST WHERE DEPT = 'EECS'",
            "List the Moira list names that belong to the EECS department.",
        )
        .unwrap();
        assert_eq!(report.score(), 1.0);
    }

    #[test]
    fn empty_projection_components_do_not_divide_by_zero() {
        let report = coverage_sql("SELECT * FROM students", "everything about students").unwrap();
        assert!(report.score() > 0.0);
    }

    #[test]
    fn grouping_detected_via_per_each() {
        let report = coverage_sql(
            "SELECT dept, AVG(gpa) FROM students GROUP BY dept",
            "Average GPA per department of the students.",
        )
        .unwrap();
        let grouping = report
            .components
            .iter()
            .find(|c| c.kind == ComponentKind::Grouping)
            .unwrap();
        assert!(grouping.covered);
    }

    #[test]
    fn nested_query_components_are_included() {
        let report = coverage_sql(
            "SELECT name FROM students WHERE id IN (SELECT student_id FROM enrollments WHERE term = 'Fall')",
            "Names of students enrolled in the Fall term (based on the enrollments records).",
        )
        .unwrap();
        assert!(
            report
                .components
                .iter()
                .any(|c| c.kind == ComponentKind::Table
                    && c.label.eq_ignore_ascii_case("enrollments"))
        );
        assert!(report.score() > 0.8);
    }

    #[test]
    fn word_boundaries_prevent_spurious_matches() {
        // "id" must not match inside "identify".
        let report = coverage_sql(
            "SELECT id FROM students",
            "identify something unrelated to the table",
        )
        .unwrap();
        let id_component = report
            .components
            .iter()
            .find(|c| c.kind == ComponentKind::SelectedColumn)
            .unwrap();
        assert!(!id_component.covered);
    }
}
