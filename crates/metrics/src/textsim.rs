//! Text similarity metrics used in the review/export step (paper step 7):
//! exact match, BLEU, and ROUGE.

/// Normalize a text for metric computation: lowercase, strip punctuation,
/// collapse whitespace.
pub fn normalize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|t| !t.is_empty())
        .map(|t| t.to_string())
        .collect()
}

/// Exact match after normalization.
pub fn exact_match(candidate: &str, reference: &str) -> bool {
    normalize(candidate) == normalize(reference)
}

fn ngram_counts(tokens: &[String], n: usize) -> std::collections::HashMap<Vec<String>, usize> {
    let mut counts = std::collections::HashMap::new();
    if tokens.len() < n {
        return counts;
    }
    for window in tokens.windows(n) {
        *counts.entry(window.to_vec()).or_insert(0) += 1;
    }
    counts
}

/// Corpus-style BLEU score of a single candidate against a single reference,
/// using up to 4-gram clipped precision and the standard brevity penalty.
///
/// Two distinct zero-ish cases are handled differently, and deliberately so:
///
/// * An **empty order** — the candidate has no n-grams of order `n` at all
///   (e.g. a 2-token candidate has no trigrams; orders above
///   `min(candidate, reference)` length never even run) — is **skipped**:
///   it contributes nothing to the geometric mean rather than zeroing it.
/// * A **matchless order** — the candidate *has* n-grams of order `n` but
///   none of them occur in the reference — **hard-zeros the whole score**.
///   This is standard unsmoothed BLEU: the geometric mean of the per-order
///   precisions contains a zero factor, so the product is zero.
///
/// No smoothing is applied beyond the empty-order skip. The score is
/// always in `[0, 1]`: every per-order precision is `matched/total ≤ 1`
/// and the brevity penalty is `exp(1 - ref/cand) ≤ 1` (see the property
/// tests).
pub fn bleu(candidate: &str, reference: &str) -> f64 {
    let cand = normalize(candidate);
    let refr = normalize(reference);
    if cand.is_empty() || refr.is_empty() {
        return 0.0;
    }
    let max_order = 4.min(cand.len()).min(refr.len());
    let mut log_precision_sum = 0.0;
    let mut orders = 0;
    for n in 1..=max_order {
        let cand_counts = ngram_counts(&cand, n);
        let ref_counts = ngram_counts(&refr, n);
        let total: usize = cand_counts.values().sum();
        if total == 0 {
            // Empty order: the candidate has no n-grams of this order —
            // skipped, not zeroed (see the docstring).
            continue;
        }
        let mut matched = 0usize;
        for (ngram, count) in &cand_counts {
            let ref_count = ref_counts.get(ngram).copied().unwrap_or(0);
            matched += (*count).min(ref_count);
        }
        if matched == 0 {
            // Matchless order: a zero precision factor zeroes the whole
            // geometric mean — standard unsmoothed BLEU.
            return 0.0;
        }
        log_precision_sum += (matched as f64 / total as f64).ln();
        orders += 1;
    }
    if orders == 0 {
        return 0.0;
    }
    let geo_mean = (log_precision_sum / orders as f64).exp();
    let brevity = if cand.len() >= refr.len() {
        1.0
    } else {
        (1.0 - refr.len() as f64 / cand.len() as f64).exp()
    };
    geo_mean * brevity
}

/// ROUGE-N recall: fraction of reference n-grams present in the candidate.
pub fn rouge_n(candidate: &str, reference: &str, n: usize) -> f64 {
    let cand = normalize(candidate);
    let refr = normalize(reference);
    let ref_counts = ngram_counts(&refr, n);
    let total: usize = ref_counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    let cand_counts = ngram_counts(&cand, n);
    let mut matched = 0usize;
    for (ngram, count) in &ref_counts {
        matched += (*count).min(cand_counts.get(ngram).copied().unwrap_or(0));
    }
    matched as f64 / total as f64
}

fn lcs_len(a: &[String], b: &[String]) -> usize {
    let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[a.len()][b.len()]
}

/// ROUGE-L F1 based on the longest common subsequence.
pub fn rouge_l(candidate: &str, reference: &str) -> f64 {
    let cand = normalize(candidate);
    let refr = normalize(reference);
    if cand.is_empty() || refr.is_empty() {
        return 0.0;
    }
    let lcs = lcs_len(&cand, &refr) as f64;
    if lcs == 0.0 {
        return 0.0;
    }
    let precision = lcs / cand.len() as f64;
    let recall = lcs / refr.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Token-level Jaccard similarity; a cheap signal used for ranking candidate
/// descriptions before a human sees them.
pub fn jaccard(candidate: &str, reference: &str) -> f64 {
    use std::collections::HashSet;
    let a: HashSet<String> = normalize(candidate).into_iter().collect();
    let b: HashSet<String> = normalize(reference).into_iter().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(&b).count() as f64;
    let union = a.union(&b).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        intersection / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_ignores_case_and_punctuation() {
        assert!(exact_match(
            "How many students are there?",
            "how many students are there"
        ));
        assert!(!exact_match("How many students", "How many buildings"));
    }

    #[test]
    fn bleu_perfect_match_is_one() {
        let s = "count the number of distinct moira lists";
        assert!((bleu(s, s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bleu_orders_quality() {
        let reference = "for each department count the number of students";
        let good = "count the number of students for each department";
        let bad = "show all buildings on campus";
        assert!(bleu(good, reference) > bleu(bad, reference));
        assert_eq!(bleu(bad, reference), 0.0);
    }

    #[test]
    fn bleu_brevity_penalty_applies() {
        let reference = "count the number of students enrolled in the january term";
        let truncated = "count the number";
        let full = "count the number of students enrolled in the january term";
        assert!(bleu(truncated, reference) < bleu(full, reference));
    }

    #[test]
    fn bleu_empty_inputs() {
        assert_eq!(bleu("", "reference"), 0.0);
        assert_eq!(bleu("candidate", ""), 0.0);
    }

    #[test]
    fn rouge_n_recall() {
        let reference = "count the students";
        assert!((rouge_n("count the students today", reference, 1) - 1.0).abs() < 1e-9);
        assert!((rouge_n("count students", reference, 1) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(rouge_n("count students", reference, 5), 0.0);
    }

    #[test]
    fn rouge_l_f1() {
        let reference = "list the names of all students";
        assert!((rouge_l(reference, reference) - 1.0).abs() < 1e-9);
        assert!(rouge_l("list the names", reference) > rouge_l("names list the", reference) - 1e-9);
        assert_eq!(rouge_l("", reference), 0.0);
    }

    #[test]
    fn jaccard_bounds() {
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("a b c", "a b c"), 1.0);
        assert_eq!(jaccard("a b", "c d"), 0.0);
        let j = jaccard("a b c", "b c d");
        assert!(j > 0.49 && j < 0.51);
    }

    #[test]
    fn normalize_splits_identifiers_preserving_underscores() {
        assert_eq!(
            normalize("MOIRA_LIST_NAME = 'B%'"),
            vec!["moira_list_name", "b"]
        );
    }

    /// The two zero-ish BLEU cases the docstring distinguishes.
    #[test]
    fn bleu_skips_empty_orders_but_zeros_matchless_orders() {
        // Empty orders skipped: a 2-token perfect match has no 3/4-grams,
        // yet scores a full 1.0 from the orders that do exist.
        assert!((bleu("count students", "count students") - 1.0).abs() < 1e-9);
        assert!((bleu("moira", "moira") - 1.0).abs() < 1e-9);
        // Matchless order zeroed: every unigram matches, but the only
        // bigram ("count students") is absent from the reference, so the
        // whole score collapses to 0 (unsmoothed BLEU).
        assert_eq!(bleu("count students", "count the students"), 0.0);
        // A candidate with no matching unigrams at all is likewise 0.
        assert_eq!(bleu("alpha beta", "gamma delta"), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every textsim metric stays in [0, 1] on arbitrary Unicode input
        /// (the `lib.rs` suite covers `[a-z ]`; this one covers
        /// punctuation-only, empty-after-normalization and multi-byte
        /// inputs too).
        #[test]
        fn all_metrics_bounded_on_arbitrary_unicode(a in ".{0,40}", b in ".{0,40}") {
            let scores = [
                bleu(&a, &b),
                rouge_n(&a, &b, 1),
                rouge_n(&a, &b, 2),
                rouge_n(&a, &b, 4),
                rouge_l(&a, &b),
                jaccard(&a, &b),
            ];
            for s in scores {
                prop_assert!((0.0..=1.0).contains(&s), "score out of range: {s} for {a:?} vs {b:?}");
                prop_assert!(s.is_finite());
            }
        }

        /// Metrics are bounded when one side normalizes to nothing.
        #[test]
        fn metrics_bounded_against_empty(a in ".{0,40}") {
            for (x, y) in [(a.as_str(), ""), ("", a.as_str()), ("?!.,;", a.as_str())] {
                let scores = [bleu(x, y), rouge_n(x, y, 1), rouge_l(x, y), jaccard(x, y)];
                for s in scores {
                    prop_assert!((0.0..=1.0).contains(&s), "score out of range: {s}");
                }
            }
        }

        /// BLEU self-similarity is exactly 1 for any non-empty normalized
        /// text — the empty-order skip must not dent a perfect match.
        #[test]
        fn bleu_self_match_is_one(a in "[a-z]{1,8}( [a-z]{1,8}){0,6}") {
            prop_assert!((bleu(&a, &a) - 1.0).abs() < 1e-9);
        }
    }
}
