//! The 5-level backtranslation clarity rubric (paper §5.2, Figure 4).
//!
//! To measure how much SQL-relevant information a natural-language
//! description preserves, the paper backtranslates the description into SQL
//! with a vanilla LLM and grades the regenerated query against the original
//! on a 5-level scale:
//!
//! 1. **Invalid** — the regenerated SQL fails to parse or execute.
//! 2. **Executable but structurally incorrect** — wrong tables, missing
//!    joins, irrelevant subqueries.
//! 3. **Column-level errors** — right structure, wrong columns / filters /
//!    functions / groupings.
//! 4. **Minor issues** — mostly faithful; ordering, nuance, or redundancy
//!    deviations.
//! 5. **Fully correct** — matches the original in structure and semantics.
//!
//! [`grade`] reproduces this rubric mechanically using the SQL analyzer and,
//! when a database is supplied, actual execution results.

use bp_sql::{analyze, Query};
use bp_storage::{results_match, Database, ExecOptions, PlanCache, Snapshot};
use serde::{Deserialize, Serialize};

/// The five clarity levels of the backtranslation rubric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ClarityLevel {
    /// Level 1: the SQL fails to parse or execute.
    Invalid = 1,
    /// Level 2: executable but structurally incorrect.
    StructurallyIncorrect = 2,
    /// Level 3: structurally correct but column-level errors.
    ColumnErrors = 3,
    /// Level 4: mostly faithful with minor deviations.
    MinorIssues = 4,
    /// Level 5: fully correct.
    FullyCorrect = 5,
}

impl ClarityLevel {
    /// Numeric value 1..=5.
    pub fn as_u8(&self) -> u8 {
        *self as u8
    }

    /// Construct from a numeric level (clamped to 1..=5).
    pub fn from_u8(level: u8) -> ClarityLevel {
        match level {
            0 | 1 => ClarityLevel::Invalid,
            2 => ClarityLevel::StructurallyIncorrect,
            3 => ClarityLevel::ColumnErrors,
            4 => ClarityLevel::MinorIssues,
            _ => ClarityLevel::FullyCorrect,
        }
    }

    /// All levels, lowest to highest.
    pub fn all() -> [ClarityLevel; 5] {
        [
            ClarityLevel::Invalid,
            ClarityLevel::StructurallyIncorrect,
            ClarityLevel::ColumnErrors,
            ClarityLevel::MinorIssues,
            ClarityLevel::FullyCorrect,
        ]
    }
}

/// The graded outcome of one backtranslation comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RubricOutcome {
    /// The assigned clarity level.
    pub level: ClarityLevel,
    /// A short explanation of why the level was assigned.
    pub reason: String,
}

/// Grade a regenerated SQL text against the original query.
///
/// When `db` is provided, level 1 vs 2 is decided by actually executing the
/// regenerated SQL, and level 5 requires matching execution results; without
/// a database the decision falls back to purely structural comparison.
pub fn grade(original: &Query, regenerated_sql: &str, db: Option<&Database>) -> RubricOutcome {
    // Level 1: must parse.
    let regenerated = match bp_sql::parse_query(regenerated_sql) {
        Ok(q) => q,
        Err(e) => {
            return RubricOutcome {
                level: ClarityLevel::Invalid,
                reason: format!("regenerated SQL does not parse: {e}"),
            }
        }
    };

    // Level 1 (continued): must execute when a database is available.
    let mut execution_matches = None;
    if let Some(db) = db {
        match db.execute(&regenerated) {
            Err(e) => {
                return RubricOutcome {
                    level: ClarityLevel::Invalid,
                    reason: format!("regenerated SQL fails to execute: {e}"),
                }
            }
            Ok(predicted) => {
                if let Ok(gold) = db.execute(original) {
                    execution_matches = Some(results_match(&gold, &predicted));
                }
            }
        }
    }

    grade_structural(original, &regenerated, execution_matches)
}

/// Levels 2–5 of the rubric: the purely structural comparison shared by
/// [`grade`] and [`grade_cached`], applied once level 1 (parse + execute)
/// has been decided and execution results (when available) compared.
fn grade_structural(
    original: &Query,
    regenerated: &Query,
    execution_matches: Option<bool>,
) -> RubricOutcome {
    let gold = analyze(original);
    let pred = analyze(regenerated);

    // Level 2: structural correctness = same base tables and comparable join
    // / nesting shape.
    let tables_match = gold.tables == pred.tables;
    let join_gap = gold.join_count.abs_diff(pred.join_count);
    let nesting_gap = gold.nesting_depth.abs_diff(pred.nesting_depth);
    if !tables_match || join_gap > 1 {
        return RubricOutcome {
            level: ClarityLevel::StructurallyIncorrect,
            reason: format!(
                "structural mismatch: tables {:?} vs {:?}, joins {} vs {}",
                gold.tables, pred.tables, gold.join_count, pred.join_count
            ),
        };
    }

    // Level 3: column-level correctness = same columns, aggregates, grouping
    // and predicate count.
    let columns_match = gold.columns == pred.columns;
    let mut gold_aggs = gold.aggregate_functions.clone();
    let mut pred_aggs = pred.aggregate_functions.clone();
    gold_aggs.sort();
    pred_aggs.sort();
    let aggregates_match = gold_aggs == pred_aggs;
    let grouping_match = gold.has_group_by == pred.has_group_by;
    let mut gold_lits = gold.literal_terms.clone();
    let mut pred_lits = pred.literal_terms.clone();
    gold_lits.sort();
    pred_lits.sort();
    let filters_match = gold.predicate_count == pred.predicate_count && gold_lits == pred_lits;
    if !columns_match || !aggregates_match || !grouping_match || !filters_match {
        return RubricOutcome {
            level: ClarityLevel::ColumnErrors,
            reason: format!(
                "column-level mismatch: columns equal = {columns_match}, aggregates equal = {aggregates_match}, grouping equal = {grouping_match}, filters equal = {filters_match}"
            ),
        };
    }

    // Level 4 vs 5: ordering / limit nuances and (when available) execution
    // result equality.
    let ordering_match = gold.has_order_by == pred.has_order_by
        && gold.has_limit == pred.has_limit
        && gold.has_distinct == pred.has_distinct
        && nesting_gap == 0
        && gold.set_operation_count == pred.set_operation_count;
    let fully_correct = match execution_matches {
        Some(matches) => matches && ordering_match,
        None => ordering_match,
    };
    if fully_correct {
        RubricOutcome {
            level: ClarityLevel::FullyCorrect,
            reason: "structure, columns, and semantics all match".to_string(),
        }
    } else {
        RubricOutcome {
            level: ClarityLevel::MinorIssues,
            reason: format!(
                "minor deviations: ordering/limit/distinct aligned = {ordering_match}, execution match = {execution_matches:?}"
            ),
        }
    }
}

/// Grade from SQL text for both sides.
pub fn grade_sql(
    original_sql: &str,
    regenerated_sql: &str,
    db: Option<&Database>,
) -> Result<RubricOutcome, bp_sql::SqlError> {
    let original = bp_sql::parse_query(original_sql)?;
    Ok(grade(&original, regenerated_sql, db))
}

/// [`grade_sql`] with execution routed through a shared [`PlanCache`]
/// against a pinned [`Snapshot`] — the shape batch graders want: every
/// distinct SQL text (each original query, and each regeneration that
/// reproduces one) is parsed, planned and compiled once per corpus sweep
/// instead of once per comparison, and all comparisons in a sweep read one
/// consistent database state however fast a writer streams inserts.
///
/// The outcome is identical to [`grade_sql`] with the same data: caching
/// changes how often compilation happens, never what is graded.
pub fn grade_cached(
    original_sql: &str,
    regenerated_sql: &str,
    snapshot: &Snapshot,
    cache: &PlanCache,
) -> Result<RubricOutcome, bp_sql::SqlError> {
    let original = bp_sql::parse_query(original_sql)?;
    // Level 1: must parse.
    let regenerated = match bp_sql::parse_query(regenerated_sql) {
        Ok(q) => q,
        Err(e) => {
            return Ok(RubricOutcome {
                level: ClarityLevel::Invalid,
                reason: format!("regenerated SQL does not parse: {e}"),
            })
        }
    };
    // Level 1 (continued): must execute. Each side runs single-threaded —
    // sweeps parallelize across comparisons, not inside one query. Each
    // execution folds its access-path tally into the cache's counters
    // (after running, so lazily-compiled plans report) — that is where the
    // study report's index-scan vs full-scan split comes from.
    let run = |sql: &str| {
        let prepared = cache.get(snapshot, sql)?;
        let result = prepared.execute(ExecOptions::serial());
        cache.record_access(prepared.access_paths());
        // Per-compile (take-once): re-executions of a cached plan fold
        // nothing, so `plans_verified` counts distinct compiles.
        cache.record_verification(prepared.take_verification());
        cache.record_optimizer(prepared.take_optimizer());
        if let Ok(result) = &result {
            cache.record_cardinality(prepared.estimated_rows(), result.row_count() as u64);
        }
        result
    };
    let mut execution_matches = None;
    match run(regenerated_sql) {
        Err(e) => {
            return Ok(RubricOutcome {
                level: ClarityLevel::Invalid,
                reason: format!("regenerated SQL fails to execute: {e}"),
            })
        }
        Ok(predicted) => {
            if let Ok(gold) = run(original_sql) {
                execution_matches = Some(results_match(&gold, &predicted));
            }
        }
    }
    Ok(grade_structural(&original, &regenerated, execution_matches))
}

/// A histogram of clarity levels (the series plotted in Figure 4).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClarityHistogram {
    /// Count of outcomes per level 1..=5 (index 0 = level 1).
    pub counts: [usize; 5],
}

impl ClarityHistogram {
    /// Build a histogram from a list of outcomes.
    pub fn from_levels<'a, I: IntoIterator<Item = &'a ClarityLevel>>(levels: I) -> Self {
        let mut histogram = ClarityHistogram::default();
        for level in levels {
            histogram.counts[(level.as_u8() - 1) as usize] += 1;
        }
        histogram
    }

    /// Add one outcome.
    pub fn record(&mut self, level: ClarityLevel) {
        self.counts[(level.as_u8() - 1) as usize] += 1;
    }

    /// Total number of recorded outcomes.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Proportion of outcomes at the given level.
    pub fn proportion(&self, level: ClarityLevel) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.counts[(level.as_u8() - 1) as usize] as f64 / total as f64
    }

    /// Mean clarity level.
    pub fn mean_level(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i + 1) * c)
            .sum();
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campus_db() -> Database {
        let mut db = Database::new("campus");
        db.ingest_ddl(
            "CREATE TABLE students (id INT PRIMARY KEY, name VARCHAR(50), gpa NUMBER, dept VARCHAR(20));",
        )
        .unwrap();
        db.insert_into(
            "students",
            vec![
                vec![1.into(), "alice".into(), 3.9.into(), "EECS".into()],
                vec![2.into(), "bob".into(), 3.1.into(), "MATH".into()],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn unparseable_sql_is_level_1() {
        let outcome = grade_sql("SELECT name FROM students", "SELEC name FROM FROM", None).unwrap();
        assert_eq!(outcome.level, ClarityLevel::Invalid);
    }

    #[test]
    fn unexecutable_sql_is_level_1_with_database() {
        let db = campus_db();
        let outcome = grade_sql(
            "SELECT name FROM students",
            "SELECT name FROM professors",
            Some(&db),
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::Invalid);
    }

    #[test]
    fn wrong_table_without_db_is_level_2() {
        let outcome = grade_sql(
            "SELECT name FROM students",
            "SELECT name FROM professors",
            None,
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::StructurallyIncorrect);
    }

    #[test]
    fn wrong_column_is_level_3() {
        let outcome = grade_sql(
            "SELECT name FROM students WHERE gpa > 3.5",
            "SELECT dept FROM students WHERE gpa > 3.5",
            None,
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::ColumnErrors);
    }

    #[test]
    fn missing_filter_is_level_3() {
        let outcome = grade_sql(
            "SELECT name FROM students WHERE dept = 'EECS'",
            "SELECT name FROM students",
            None,
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::ColumnErrors);
    }

    #[test]
    fn missing_order_by_is_level_4() {
        let outcome = grade_sql(
            "SELECT name, gpa FROM students ORDER BY gpa DESC",
            "SELECT name, gpa FROM students",
            None,
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::MinorIssues);
    }

    #[test]
    fn identical_query_is_level_5() {
        let db = campus_db();
        let outcome = grade_sql(
            "SELECT name FROM students WHERE gpa > 3.5",
            "SELECT name FROM students WHERE gpa > 3.5",
            Some(&db),
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::FullyCorrect);
    }

    #[test]
    fn equivalent_rewrite_is_level_5_without_db() {
        let outcome = grade_sql(
            "SELECT name FROM students WHERE gpa > 3.5 ORDER BY name",
            "SELECT name FROM students WHERE gpa > 3.5 ORDER BY name ASC",
            None,
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::FullyCorrect);
    }

    #[test]
    fn grade_cached_agrees_with_grade_sql_everywhere() {
        let db = campus_db();
        let snapshot = db.snapshot();
        let cache = PlanCache::with_default_capacity();
        let cases = [
            // (original, regenerated) covering every rubric level, plus
            // failure modes on both sides.
            ("SELECT name FROM students", "SELEC name FROM FROM"),
            ("SELECT name FROM students", "SELECT name FROM professors"),
            (
                "SELECT name FROM students WHERE gpa > 3.5",
                "SELECT dept FROM students WHERE gpa > 3.5",
            ),
            (
                "SELECT name FROM students WHERE dept = 'EECS'",
                "SELECT name FROM students",
            ),
            (
                "SELECT name, gpa FROM students ORDER BY gpa DESC",
                "SELECT name, gpa FROM students",
            ),
            (
                "SELECT name FROM students WHERE gpa > 3.5",
                "SELECT name FROM students WHERE gpa > 3.5",
            ),
            // Original fails to execute: falls back to structural grading.
            ("SELECT nosuch FROM students", "SELECT nosuch FROM students"),
        ];
        for (original, regenerated) in cases {
            let direct = grade_sql(original, regenerated, Some(&db)).unwrap();
            let cached = grade_cached(original, regenerated, &snapshot, &cache).unwrap();
            assert_eq!(
                direct, cached,
                "cached grading diverges on ({original}, {regenerated})"
            );
            // And again, now that every plan is warm in the cache.
            let warm = grade_cached(original, regenerated, &snapshot, &cache).unwrap();
            assert_eq!(direct, warm);
        }
        // The sweep's access-path split is observable on the cache: the
        // sargable predicates (`dept = 'EECS'`, `gpa > 3.5`) compiled onto
        // the secondary index, the bare projections walked the table.
        let access = cache.access_stats();
        assert!(access.index_scan > 0, "sargable cases must probe the index");
        assert!(access.full_scan > 0, "unfiltered cases must full-scan");
        // Unparseable originals error identically.
        assert!(grade_sql("SELEC", "SELECT 1", Some(&db)).is_err());
        assert!(grade_cached("SELEC", "SELECT 1", &snapshot, &cache).is_err());
        let stats = cache.stats();
        assert!(stats.hits > 0, "second sweep must hit the cache");
    }

    #[test]
    fn grade_cached_pins_its_snapshot_under_writes() {
        let mut db = campus_db();
        let snapshot = db.snapshot();
        let cache = PlanCache::with_default_capacity();
        let before = grade_cached(
            "SELECT COUNT(*) FROM students",
            "SELECT COUNT(*) FROM students",
            &snapshot,
            &cache,
        )
        .unwrap();
        db.insert_into(
            "students",
            vec![vec![3.into(), "carol".into(), 3.5.into(), "EECS".into()]],
        )
        .unwrap();
        // The pinned snapshot still grades the old state...
        let pinned = grade_cached(
            "SELECT COUNT(*) FROM students",
            "SELECT COUNT(*) FROM students",
            &snapshot,
            &cache,
        )
        .unwrap();
        assert_eq!(before, pinned);
        // ...and a fresh snapshot sees the write, with the stale plan
        // invalidated by table version rather than reused.
        let fresh = db.snapshot();
        let outcome = grade_cached(
            "SELECT COUNT(*) FROM students",
            "SELECT COUNT(*) FROM students",
            &fresh,
            &cache,
        )
        .unwrap();
        assert_eq!(outcome.level, ClarityLevel::FullyCorrect);
        assert!(cache.stats().invalidations >= 1);
    }

    #[test]
    fn level_round_trip() {
        for level in ClarityLevel::all() {
            assert_eq!(ClarityLevel::from_u8(level.as_u8()), level);
        }
        assert_eq!(ClarityLevel::from_u8(0), ClarityLevel::Invalid);
        assert_eq!(ClarityLevel::from_u8(9), ClarityLevel::FullyCorrect);
    }

    #[test]
    fn histogram_accumulates() {
        let mut histogram = ClarityHistogram::default();
        histogram.record(ClarityLevel::FullyCorrect);
        histogram.record(ClarityLevel::FullyCorrect);
        histogram.record(ClarityLevel::MinorIssues);
        assert_eq!(histogram.total(), 3);
        assert!((histogram.proportion(ClarityLevel::FullyCorrect) - 2.0 / 3.0).abs() < 1e-9);
        assert!((histogram.mean_level() - (5.0 + 5.0 + 4.0) / 3.0).abs() < 1e-9);
        let from_levels = ClarityHistogram::from_levels(&[
            ClarityLevel::FullyCorrect,
            ClarityLevel::FullyCorrect,
            ClarityLevel::MinorIssues,
        ]);
        assert_eq!(histogram, from_levels);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let histogram = ClarityHistogram::default();
        assert_eq!(histogram.total(), 0);
        assert_eq!(histogram.mean_level(), 0.0);
        assert_eq!(histogram.proportion(ClarityLevel::Invalid), 0.0);
    }
}
