//! NL-to-SQL backtranslation (the "vanilla LLM" of the paper's §5.2
//! backtranslation study and the planned text-to-SQL validation loop).
//!
//! The backtranslator regenerates SQL *solely from the natural-language
//! description and the schema*: tables are selected by lexical overlap with
//! the description, aggregates come from phrasing cues ("number of",
//! "average", "highest"), filters come from quoted literals and comparison
//! phrases, grouping from "for each"/"per", ordering and limits from
//! "sorted"/"top". Its output quality therefore depends directly on how much
//! SQL-relevant information the description preserves — which is precisely
//! what the paper's Figure 4 uses backtranslation to measure. No gold query
//! is consulted.

use crate::model::ModelProfile;
use bp_embed::tokenize;
use bp_sql::DataType;
use bp_storage::{Catalog, TableSchema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An aggregate inferred from description phrasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum InferredAggregate {
    Count,
    Sum,
    Avg,
    Max,
    Min,
}

impl InferredAggregate {
    fn sql_name(&self) -> &'static str {
        match self {
            InferredAggregate::Count => "COUNT",
            InferredAggregate::Sum => "SUM",
            InferredAggregate::Avg => "AVG",
            InferredAggregate::Max => "MAX",
            InferredAggregate::Min => "MIN",
        }
    }
}

/// The backtranslator: schema-grounded, deterministic reconstruction of SQL
/// from a natural-language description.
#[derive(Debug, Clone)]
pub struct Backtranslator<'a> {
    catalog: &'a Catalog,
    profile: ModelProfile,
}

impl<'a> Backtranslator<'a> {
    /// Create a backtranslator over a schema catalog using the given model
    /// profile (the paper uses a vanilla, un-tuned model here).
    pub fn new(catalog: &'a Catalog, profile: ModelProfile) -> Self {
        Backtranslator { catalog, profile }
    }

    /// Regenerate SQL from a description. Always returns *some* SQL text;
    /// whether it parses/executes/matches is what the rubric grades.
    pub fn backtranslate(&self, description: &str) -> String {
        let tokens = tokenize(description);
        let token_set: BTreeSet<String> = tokens.iter().cloned().collect();
        let lower = description.to_lowercase();

        // 1. Table selection by lexical overlap.
        let mut scored_tables: Vec<(f64, &TableSchema)> = self
            .catalog
            .tables()
            .map(|t| (table_score(t, &token_set), t))
            .filter(|(score, _)| *score > 0.0)
            .collect();
        scored_tables.sort_by(|(a, ta), (b, tb)| {
            b.partial_cmp(a)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ta.name.cmp(&tb.name))
        });
        if scored_tables.is_empty() {
            // Nothing recognizable: emit a degenerate query (level 1-2 outcome).
            return "SELECT 1".to_string();
        }
        let primary = scored_tables[0].1;
        // Include a second table only when its *name* (not just a column) is
        // clearly mentioned and a join key exists.
        let secondary =
            scored_tables.iter().skip(1).map(|(_, t)| *t).find(|t| {
                table_name_mentioned(t, &token_set) && join_condition(primary, t).is_some()
            });

        // 2. Aggregates and distinct.
        let aggregate = infer_aggregate(&lower);
        let distinct =
            lower.contains("distinct") || lower.contains("unique ") || lower.contains("different ");

        // 3. Columns mentioned, per table.
        let mentioned_primary = mentioned_columns(primary, &token_set);
        let mentioned_secondary = secondary
            .map(|t| mentioned_columns(t, &token_set))
            .unwrap_or_default();

        // 4. Grouping.
        let group_column = infer_group_column(&lower, primary, secondary);

        // 5. Filters.
        let mut filters = infer_literal_filters(description, primary, secondary);
        filters.extend(infer_numeric_filters(&lower, primary));

        // 6. Ordering and limit.
        let wants_order = lower.contains("sorted")
            || lower.contains("order")
            || lower.contains("descending")
            || lower.contains("ascending")
            || lower.contains(" top ")
            || lower.contains("highest")
            || lower.contains("most ");
        let descending = !lower.contains("ascending");
        let limit = infer_limit(&lower);

        // 7. Assemble the projection.
        let mut projection: Vec<String> = Vec::new();
        if let Some(group_column) = &group_column {
            projection.push(group_column.clone());
        }
        if let Some(aggregate) = aggregate {
            let argument = aggregate_argument(
                aggregate,
                distinct,
                &mentioned_primary,
                &mentioned_secondary,
                group_column.as_deref(),
                primary,
            );
            projection.push(argument);
        }
        // When aggregating, the grouping key and the aggregate cover the
        // output; only non-aggregate queries project other mentioned columns.
        if aggregate.is_none() {
            for column in &mentioned_primary {
                if projection.len() >= 4 {
                    break;
                }
                if Some(column.as_str()) != group_column.as_deref()
                    && !projection.iter().any(|p| p.contains(column))
                {
                    projection.push(column.clone());
                }
            }
        }
        if projection.is_empty() {
            projection.push("*".to_string());
        }

        // 8. Assemble the SQL text.
        let mut sql = format!("SELECT {}", projection.join(", "));
        sql.push_str(&format!(" FROM {}", primary.name));
        if let Some(secondary) = secondary {
            if let Some((left, right)) = join_condition(primary, secondary) {
                sql.push_str(&format!(
                    " JOIN {} ON {}.{} = {}.{}",
                    secondary.name, primary.name, left, secondary.name, right
                ));
            }
        }
        if !filters.is_empty() {
            sql.push_str(&format!(" WHERE {}", filters.join(" AND ")));
        }
        if let Some(group_column) = &group_column {
            sql.push_str(&format!(" GROUP BY {group_column}"));
        }
        if wants_order {
            let key = if aggregate.is_some() {
                "2".to_string()
            } else {
                projection[0].clone()
            };
            // Only order by ordinal 2 if there are at least 2 projected columns.
            let key = if key == "2" && projection.len() < 2 {
                projection[0].clone()
            } else {
                key
            };
            if key != "*" {
                sql.push_str(&format!(
                    " ORDER BY {key}{}",
                    if descending { " DESC" } else { "" }
                ));
            }
        }
        if let Some(limit) = limit {
            sql.push_str(&format!(" LIMIT {limit}"));
        }

        // 9. Vanilla-model imperfection: a weak backtranslator occasionally
        // drops the WHERE clause it found. Deterministic per description.
        if self.profile.sql_skill < 0.7 && !filters.is_empty() {
            let h = crate::sql2nl::stable_hash(description);
            if (h % 100) as f64 / 100.0 > self.profile.sql_skill {
                if let Some(pos) = sql.find(" WHERE ") {
                    let rest = sql[pos + 7..].to_string();
                    let end = rest
                        .find(" GROUP BY ")
                        .or_else(|| rest.find(" ORDER BY "))
                        .unwrap_or(rest.len());
                    sql = format!("{}{}", &sql[..pos], &rest[end..]);
                }
            }
        }
        sql
    }
}

fn name_parts(name: &str) -> Vec<String> {
    tokenize(name)
}

/// Words that appear both in ordinary English and in schema identifiers
/// ("list", "name", ...); they carry much less evidence for table selection.
fn is_common_word(word: &str) -> bool {
    matches!(
        word,
        "list"
            | "name"
            | "data"
            | "type"
            | "key"
            | "code"
            | "status"
            | "date"
            | "value"
            | "number"
            | "id"
            | "all"
            | "record"
            | "records"
            | "table"
            | "info"
    )
}

fn table_score(table: &TableSchema, tokens: &BTreeSet<String>) -> f64 {
    let mut score = 0.0;
    let full_name = table.name.to_lowercase();
    // Exact full-name mention (e.g. "students", "moira_list") is the
    // strongest possible signal.
    if tokens_contains(tokens, &full_name) && !is_common_word(&full_name) {
        score += 3.0;
    }
    for part in name_parts(&table.name) {
        if part == full_name || part.len() <= 2 {
            continue;
        }
        if tokens_contains(tokens, &part) {
            score += if is_common_word(&part) { 0.25 } else { 1.0 };
        }
    }
    for column in &table.columns {
        for part in name_parts(&column.name) {
            if part.len() > 2 && tokens_contains(tokens, &part) {
                score += if is_common_word(&part) { 0.1 } else { 0.5 };
            }
        }
    }
    score
}

fn tokens_contains(tokens: &BTreeSet<String>, part: &str) -> bool {
    if tokens.contains(part) {
        return true;
    }
    // Light plural/prefix slack so "students" matches the `student` part.
    tokens.iter().any(|t| {
        (t.len() >= 4 && part.len() >= 4 && (t.starts_with(part) || part.starts_with(t.as_str())))
            || *t == format!("{part}s")
            || format!("{t}s") == part
    })
}

fn table_name_mentioned(table: &TableSchema, tokens: &BTreeSet<String>) -> bool {
    name_parts(&table.name)
        .iter()
        .any(|p| p.len() > 2 && tokens_contains(tokens, p))
}

fn mentioned_columns(table: &TableSchema, tokens: &BTreeSet<String>) -> Vec<String> {
    let generic = ["id", "key", "code", "num", "no"];
    table
        .columns
        .iter()
        .filter(|c| {
            name_parts(&c.name).iter().any(|p| {
                p.len() > 2 && !generic.contains(&p.as_str()) && tokens_contains(tokens, p)
            })
        })
        .map(|c| c.name.clone())
        .collect()
}

fn infer_aggregate(lower: &str) -> Option<InferredAggregate> {
    if lower.contains("number of") || lower.contains("how many") || lower.contains("count") {
        Some(InferredAggregate::Count)
    } else if lower.contains("average") || lower.contains(" mean ") {
        Some(InferredAggregate::Avg)
    } else if lower.contains("total ") || lower.contains(" sum ") {
        Some(InferredAggregate::Sum)
    } else if lower.contains("highest") || lower.contains("maximum") || lower.contains("largest") {
        Some(InferredAggregate::Max)
    } else if lower.contains("lowest")
        || lower.contains("minimum")
        || lower.contains("fewest")
        || lower.contains("smallest")
    {
        Some(InferredAggregate::Min)
    } else {
        None
    }
}

fn aggregate_argument(
    aggregate: InferredAggregate,
    distinct: bool,
    primary_columns: &[String],
    secondary_columns: &[String],
    group_column: Option<&str>,
    primary: &TableSchema,
) -> String {
    let distinct_prefix = if distinct { "DISTINCT " } else { "" };
    // Prefer a mentioned column that is not the grouping column; numeric
    // aggregates prefer numeric columns.
    let numeric_needed = !matches!(aggregate, InferredAggregate::Count);
    let candidate = secondary_columns
        .iter()
        .chain(primary_columns.iter())
        .find(|c| {
            Some(c.as_str()) != group_column
                && (!numeric_needed
                    || primary
                        .column(c)
                        .map(|col| matches!(col.data_type, DataType::Integer | DataType::Float))
                        .unwrap_or(true))
        })
        .cloned();
    match (aggregate, candidate) {
        (InferredAggregate::Count, None) => "COUNT(*)".to_string(),
        (agg, Some(column)) => format!("{}({distinct_prefix}{column})", agg.sql_name()),
        (agg, None) => {
            // Fall back to the first numeric column of the primary table.
            let column = primary
                .columns
                .iter()
                .find(|c| matches!(c.data_type, DataType::Integer | DataType::Float))
                .map(|c| c.name.clone())
                .unwrap_or_else(|| "*".to_string());
            format!("{}({distinct_prefix}{column})", agg.sql_name())
        }
    }
}

fn infer_group_column(
    lower: &str,
    primary: &TableSchema,
    secondary: Option<&TableSchema>,
) -> Option<String> {
    let cue_positions: Vec<usize> = ["for each ", "per ", "for every ", "by each "]
        .iter()
        .filter_map(|cue| lower.find(cue).map(|p| p + cue.len()))
        .collect();
    let position = cue_positions.into_iter().min()?;
    // The grouping key is the phrase immediately after the cue, up to the
    // next clause boundary ("for each dept, report ..." → "dept").
    let tail: String = lower[position..]
        .chars()
        .take_while(|c| *c != ',' && *c != '.' && *c != ';')
        .take(40)
        .collect();
    let tail_tokens: BTreeSet<String> = tokenize(&tail).into_iter().collect();
    let candidates = |table: &TableSchema| -> Option<String> {
        let generic = ["id", "key", "code"];
        table
            .columns
            .iter()
            .find(|c| {
                name_parts(&c.name).iter().any(|p| {
                    p.len() > 2
                        && !generic.contains(&p.as_str())
                        && tokens_contains(&tail_tokens, p)
                })
            })
            .map(|c| c.name.clone())
    };
    candidates(primary).or_else(|| secondary.and_then(candidates))
}

fn quoted_literals(description: &str) -> Vec<String> {
    let mut literals = Vec::new();
    let mut rest = description;
    while let Some(start) = rest.find('\'') {
        let after = &rest[start + 1..];
        match after.find('\'') {
            Some(end) => {
                literals.push(after[..end].to_string());
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    literals
}

fn infer_literal_filters(
    description: &str,
    primary: &TableSchema,
    secondary: Option<&TableSchema>,
) -> Vec<String> {
    let lower = description.to_lowercase();
    let mut filters = Vec::new();
    for literal in quoted_literals(description) {
        if literal.is_empty() {
            continue;
        }
        // Find the text column whose name parts appear closest before the literal.
        let literal_position = lower
            .find(&format!("'{}'", literal.to_lowercase()))
            .unwrap_or(0);
        let window: String = lower[..literal_position]
            .chars()
            .rev()
            .take(70)
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        // Pick the text column mentioned *closest* to the literal ("rows
        // where dept is 'EECS'" should bind to dept, not to an earlier
        // mention of name).
        let pick_column = |table: &TableSchema| -> Option<String> {
            let mut best: Option<(usize, String)> = None;
            for column in table
                .columns
                .iter()
                .filter(|c| c.data_type == DataType::Text)
            {
                let latest = name_parts(&column.name)
                    .iter()
                    .filter(|p| p.len() > 2)
                    .filter_map(|p| window.rfind(p.as_str()))
                    .max();
                if let Some(position) = latest {
                    if best.as_ref().map(|(b, _)| position > *b).unwrap_or(true) {
                        best = Some((position, column.name.clone()));
                    }
                }
            }
            best.map(|(_, name)| name)
        };
        let column = pick_column(primary)
            .or_else(|| secondary.and_then(pick_column))
            .or_else(|| {
                primary
                    .columns
                    .iter()
                    .find(|c| c.data_type == DataType::Text)
                    .map(|c| c.name.clone())
            });
        let Some(column) = column else { continue };
        let starts_with_cue = lower[..literal_position].ends_with("starts with ")
            || window.trim_end().ends_with("starts with")
            || window.contains("starting with");
        if starts_with_cue {
            filters.push(format!("{column} LIKE '{literal}%'"));
        } else if window.contains("ends with") || window.contains("ending with") {
            filters.push(format!("{column} LIKE '%{literal}'"));
        } else {
            filters.push(format!("{column} = '{literal}'"));
        }
    }
    filters
}

fn infer_numeric_filters(lower: &str, primary: &TableSchema) -> Vec<String> {
    let mut filters = Vec::new();
    let comparisons = [
        ("greater than", ">"),
        ("more than", ">"),
        ("above", ">"),
        ("at least", ">="),
        ("less than", "<"),
        ("fewer than", "<"),
        ("below", "<"),
        ("at most", "<="),
    ];
    for (phrase, operator) in comparisons {
        let mut search_from = 0usize;
        while let Some(found) = lower[search_from..].find(phrase) {
            let position = search_from + found + phrase.len();
            let tail: String = lower[position..].chars().take(20).collect();
            let number: String = tail
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect::<String>()
                .trim_end_matches('.')
                .to_string();
            search_from = position;
            if number.is_empty() {
                continue;
            }
            // Column: the numeric column whose name parts appear before the phrase.
            let head: String = lower[..search_from.saturating_sub(phrase.len())]
                .chars()
                .rev()
                .take(60)
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            let head_tokens: BTreeSet<String> = tokenize(&head).into_iter().collect();
            let column = primary
                .columns
                .iter()
                .filter(|c| matches!(c.data_type, DataType::Integer | DataType::Float))
                .find(|c| {
                    name_parts(&c.name)
                        .iter()
                        .any(|p| p.len() > 2 && tokens_contains(&head_tokens, p))
                })
                .or_else(|| {
                    primary
                        .columns
                        .iter()
                        .find(|c| matches!(c.data_type, DataType::Integer | DataType::Float))
                });
            if let Some(column) = column {
                filters.push(format!("{} {} {}", column.name, operator, number));
            }
        }
    }
    filters
}

fn infer_limit(lower: &str) -> Option<usize> {
    if lower.contains("single top row") || lower.contains("only the single") {
        return Some(1);
    }
    if let Some(position) = lower.find("top ") {
        let tail: String = lower[position + 4..].chars().take(10).collect();
        let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(n) = digits.parse::<usize>() {
            return Some(n);
        }
        if tail.starts_with("row") || tail.starts_with("result") {
            return Some(1);
        }
    }
    if lower.contains("the most") && (lower.contains("which ") || lowest_single_cue(lower)) {
        return Some(1);
    }
    None
}

fn lowest_single_cue(lower: &str) -> bool {
    lower.contains("the one ") || lower.contains("single ")
}

fn join_condition(left: &TableSchema, right: &TableSchema) -> Option<(String, String)> {
    // Prefer declared foreign keys in either direction.
    for column in &left.columns {
        if let Some((table, target)) = &column.references {
            if table.eq_ignore_ascii_case(&right.name) {
                return Some((column.name.clone(), target.clone()));
            }
        }
    }
    for column in &right.columns {
        if let Some((table, target)) = &column.references {
            if table.eq_ignore_ascii_case(&left.name) {
                return Some((target.clone(), column.name.clone()));
            }
        }
    }
    // Otherwise, a shared column name (the enterprise "user_id everywhere" pattern).
    for lc in &left.columns {
        for rc in &right.columns {
            if lc.name.eq_ignore_ascii_case(&rc.name) && lc.name.to_lowercase().contains("id") {
                return Some((lc.name.clone(), rc.name.clone()));
            }
        }
    }
    // Finally, "<left-table-singular>_id" style keys.
    for rc in &right.columns {
        let lowered = rc.name.to_lowercase();
        if lowered.ends_with("_id") || lowered.ends_with("_key") {
            let stem = lowered.trim_end_matches("_id").trim_end_matches("_key");
            if left.name.to_lowercase().contains(stem) {
                if let Some(pk) = left.columns.iter().find(|c| c.primary_key) {
                    return Some((pk.name.clone(), rc.name.clone()));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use bp_storage::Column;

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog
            .add_table(TableSchema::new(
                "students",
                vec![
                    Column::new("id", DataType::Integer).primary_key(),
                    Column::new("name", DataType::Text),
                    Column::new("gpa", DataType::Float),
                    Column::new("dept", DataType::Text),
                ],
            ))
            .unwrap();
        catalog
            .add_table(TableSchema::new(
                "enrollments",
                vec![
                    Column::new("student_id", DataType::Integer).references("students", "id"),
                    Column::new("term", DataType::Text),
                    Column::new("course", DataType::Text),
                ],
            ))
            .unwrap();
        catalog
            .add_table(TableSchema::new(
                "moira_list",
                vec![
                    Column::new("moira_list_key", DataType::Integer).primary_key(),
                    Column::new("moira_list_name", DataType::Text),
                    Column::new("dept", DataType::Text),
                ],
            ))
            .unwrap();
        catalog
    }

    fn translator(catalog: &Catalog) -> Backtranslator<'_> {
        Backtranslator::new(catalog, ModelKind::Gpt4o.profile())
    }

    #[test]
    fn simple_count_round_trips() {
        let catalog = catalog();
        let sql = translator(&catalog).backtranslate("Report the number of students.");
        assert!(sql.to_uppercase().contains("COUNT"));
        assert!(sql.to_lowercase().contains("from students"));
        bp_sql::parse_query(&sql).expect("parses");
    }

    #[test]
    fn filter_literal_is_reconstructed() {
        let catalog = catalog();
        let sql = translator(&catalog).backtranslate(
            "List the name of students, considering only rows where dept is 'EECS'.",
        );
        assert!(sql.contains("dept = 'EECS'"), "got: {sql}");
        bp_sql::parse_query(&sql).expect("parses");
    }

    #[test]
    fn starts_with_becomes_like() {
        let catalog = catalog();
        let sql = translator(&catalog).backtranslate(
            "Report the number of distinct moira list name in the moira list records, considering only rows where moira list name starts with 'B'.",
        );
        assert!(sql.contains("LIKE 'B%'"), "got: {sql}");
        bp_sql::parse_query(&sql).expect("parses");
    }

    #[test]
    fn grouping_and_ordering_are_reconstructed() {
        let catalog = catalog();
        let sql = translator(&catalog).backtranslate(
            "For each dept, report the number of students, sorted by the count in descending order, returning only the top 3 rows.",
        );
        let upper = sql.to_uppercase();
        assert!(upper.contains("GROUP BY"), "got: {sql}");
        assert!(upper.contains("ORDER BY"), "got: {sql}");
        assert!(upper.contains("LIMIT 3"), "got: {sql}");
        bp_sql::parse_query(&sql).expect("parses");
    }

    #[test]
    fn numeric_comparison_reconstructed() {
        let catalog = catalog();
        let sql = translator(&catalog)
            .backtranslate("List the name of students whose gpa is greater than 3.5.");
        assert!(sql.contains("gpa > 3.5"), "got: {sql}");
    }

    #[test]
    fn join_reconstructed_when_both_tables_mentioned() {
        let catalog = catalog();
        let sql = translator(&catalog).backtranslate(
            "Report the number of enrollments by combining the students and enrollments records, considering only rows where term is 'J-term'.",
        );
        let upper = sql.to_uppercase();
        assert!(upper.contains("JOIN"), "got: {sql}");
        assert!(sql.contains("term = 'J-term'"), "got: {sql}");
        bp_sql::parse_query(&sql).expect("parses");
    }

    #[test]
    fn vague_description_misses_information() {
        let catalog = catalog();
        let sql = translator(&catalog).backtranslate("Show some data about students.");
        // The filter and aggregation information is simply not there, so the
        // reconstruction cannot contain it.
        assert!(!sql.to_uppercase().contains("WHERE"));
        bp_sql::parse_query(&sql).expect("parses");
    }

    #[test]
    fn unrelated_description_yields_degenerate_query() {
        let catalog = catalog();
        let sql = translator(&catalog).backtranslate("quarterly revenue of the sales pipeline");
        assert_eq!(sql, "SELECT 1");
    }

    #[test]
    fn backtranslation_is_deterministic() {
        let catalog = catalog();
        let t = translator(&catalog);
        let description = "For each dept, report the average gpa of students.";
        assert_eq!(t.backtranslate(description), t.backtranslate(description));
    }

    #[test]
    fn average_uses_numeric_column() {
        let catalog = catalog();
        let sql = translator(&catalog)
            .backtranslate("For each dept, report the average gpa in the students records.");
        assert!(
            sql.to_uppercase()
                .contains("AVG(gpa)".to_uppercase().as_str()),
            "got: {sql}"
        );
    }

    #[test]
    fn quoted_literals_extractor() {
        assert_eq!(
            quoted_literals("where dept is 'EECS' and name starts with 'B'"),
            vec!["EECS".to_string(), "B".to_string()]
        );
        assert!(quoted_literals("no literals here").is_empty());
    }

    #[test]
    fn weak_model_sometimes_drops_filters() {
        let catalog = catalog();
        let weak = Backtranslator::new(&catalog, ModelKind::Llama8B.profile());
        // Across many paraphrases, at least one reconstruction should lose its
        // WHERE clause due to the weak model's skill, and at least one keep it.
        let mut kept = 0;
        let mut dropped = 0;
        for i in 0..30 {
            let description = format!(
                "List the name of students number {i}, considering only rows where dept is 'EECS'."
            );
            let sql = weak.backtranslate(&description);
            if sql.to_uppercase().contains("WHERE") {
                kept += 1;
            } else {
                dropped += 1;
            }
        }
        assert!(kept > 0);
        assert!(dropped > 0);
    }
}
