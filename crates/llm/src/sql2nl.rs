//! SQL-to-NL generation: the candidate descriptions BenchPress proposes in
//! step 5 of the annotation loop.
//!
//! Generation is split in two stages that mirror how a schema-aware LLM
//! behaves:
//!
//! 1. [`DescriptionPlan`] — a faithful, component-by-component plan of what a
//!    complete description must mention, derived deterministically from the
//!    query AST (projection, tables, filters, grouping, ordering, limits).
//! 2. [`generate_candidates`] — four natural-language candidates rendered
//!    from the plan with different phrasings, where each component survives
//!    with a probability given by the model's effective fidelity (which in
//!    turn depends on query difficulty, unresolved domain terms, and the
//!    retrieval-augmented context quality). Weak models under-describe; good
//!    context pulls candidates back toward completeness. That is exactly the
//!    mechanism the paper's user study measures.

use crate::model::ModelProfile;
use crate::prompt::Prompt;
use bp_sql::{
    analyze, BinaryOperator, Expr, Literal, Query, Select, SelectItem, SetExpr, SetOperator,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One natural-language candidate description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NlCandidate {
    /// The candidate text.
    pub text: String,
    /// The fraction of plan components the candidate actually mentions
    /// (1.0 = the candidate is complete). This is internal generation
    /// metadata, not shown to annotators.
    pub completeness: f64,
    /// Whether the candidate contains hallucinated content.
    pub hallucinated: bool,
}

/// The number of candidates BenchPress generates per query (paper step 5).
pub const CANDIDATES_PER_QUERY: usize = 4;

/// A faithful plan of the phrases a complete description must contain.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DescriptionPlan {
    /// Phrases describing each projected output.
    pub projection: Vec<String>,
    /// Phrase describing the tables/relations read.
    pub tables: String,
    /// Phrases describing filter predicates.
    pub filters: Vec<String>,
    /// Phrase describing grouping, if any.
    pub grouping: Option<String>,
    /// Phrase describing a HAVING restriction, if any.
    pub having: Option<String>,
    /// Phrase describing ordering, if any.
    pub ordering: Option<String>,
    /// Phrase describing a row limit, if any.
    pub limit: Option<String>,
    /// Phrase describing set operations, if any.
    pub set_operation: Option<String>,
}

impl DescriptionPlan {
    /// Total number of describable components.
    pub fn component_count(&self) -> usize {
        self.projection.len()
            + usize::from(!self.tables.is_empty())
            + self.filters.len()
            + usize::from(self.grouping.is_some())
            + usize::from(self.having.is_some())
            + usize::from(self.ordering.is_some())
            + usize::from(self.limit.is_some())
            + usize::from(self.set_operation.is_some())
    }
}

/// Humanize an identifier: lowercase and replace separators with spaces.
pub fn humanize(identifier: &str) -> String {
    let mut out = String::with_capacity(identifier.len());
    let mut prev_lower = false;
    for c in identifier.chars() {
        if c == '_' || c == '.' {
            out.push(' ');
            prev_lower = false;
        } else if c.is_uppercase() && prev_lower {
            out.push(' ');
            out.extend(c.to_lowercase());
            prev_lower = false;
        } else {
            out.extend(c.to_lowercase());
            prev_lower = c.is_lowercase() || c.is_numeric();
        }
    }
    out.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn expr_phrase(expr: &Expr) -> String {
    match expr {
        Expr::Identifier(i) => humanize(&i.value),
        Expr::CompoundIdentifier(parts) => parts
            .last()
            .map(|p| humanize(&p.value))
            .unwrap_or_else(|| "value".to_string()),
        Expr::Literal(Literal::String(s)) => format!("'{s}'"),
        Expr::Literal(Literal::Number(n)) => n.clone(),
        Expr::Literal(Literal::Boolean(b)) => b.to_string(),
        Expr::Literal(Literal::Null) => "null".to_string(),
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let func = name.value.to_ascii_uppercase();
            let arg_phrase = match args.first() {
                Some(Expr::Wildcard) | None => "rows".to_string(),
                Some(arg) => expr_phrase(arg),
            };
            let distinct_word = if *distinct { "distinct " } else { "" };
            match func.as_str() {
                "COUNT" => format!("the number of {distinct_word}{arg_phrase}"),
                "SUM" => format!("the total {distinct_word}{arg_phrase}"),
                "AVG" => format!("the average {distinct_word}{arg_phrase}"),
                "MAX" => format!("the highest {distinct_word}{arg_phrase}"),
                "MIN" => format!("the lowest {distinct_word}{arg_phrase}"),
                _ => format!("{} of {}", func.to_lowercase(), arg_phrase),
            }
        }
        Expr::BinaryOp { left, op, right } => format!(
            "{} {} {}",
            expr_phrase(left),
            binary_phrase(*op),
            expr_phrase(right)
        ),
        Expr::Case { .. } => "a derived category".to_string(),
        Expr::Subquery(_) => "the result of a subquery".to_string(),
        Expr::Nested(inner) | Expr::Cast { expr: inner, .. } => expr_phrase(inner),
        Expr::Wildcard => "all columns".to_string(),
        other => humanize(&other.to_string()),
    }
}

fn binary_phrase(op: BinaryOperator) -> &'static str {
    match op {
        BinaryOperator::Eq => "is",
        BinaryOperator::NotEq => "is not",
        BinaryOperator::Lt => "is less than",
        BinaryOperator::LtEq => "is at most",
        BinaryOperator::Gt => "is greater than",
        BinaryOperator::GtEq => "is at least",
        BinaryOperator::Plus => "plus",
        BinaryOperator::Minus => "minus",
        BinaryOperator::Multiply => "times",
        BinaryOperator::Divide => "divided by",
        BinaryOperator::Modulo => "modulo",
        BinaryOperator::And => "and",
        BinaryOperator::Or => "or",
        BinaryOperator::Concat => "concatenated with",
    }
}

fn filter_phrase(expr: &Expr) -> Vec<String> {
    match expr {
        Expr::BinaryOp { left, op, right } => match op {
            BinaryOperator::And => {
                let mut phrases = filter_phrase(left);
                phrases.extend(filter_phrase(right));
                phrases
            }
            BinaryOperator::Or => {
                vec![format!(
                    "either {} or {}",
                    filter_phrase(left).join(" and "),
                    filter_phrase(right).join(" and ")
                )]
            }
            _ => vec![format!(
                "{} {} {}",
                expr_phrase(left),
                binary_phrase(*op),
                expr_phrase(right)
            )],
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let target = expr_phrase(expr);
            let pattern_text = match pattern.as_ref() {
                Expr::Literal(Literal::String(s)) => s.clone(),
                other => expr_phrase(other),
            };
            let neg = if *negated { "does not" } else { "" };
            let phrase = if let Some(prefix) = pattern_text.strip_suffix('%') {
                if !prefix.contains('%') && !prefix.contains('_') {
                    format!("{target} {neg} starts with '{prefix}'")
                } else {
                    format!("{target} {neg} matches the pattern '{pattern_text}'")
                }
            } else if let Some(suffix) = pattern_text.strip_prefix('%') {
                format!("{target} {neg} ends with '{suffix}'")
            } else {
                format!("{target} {neg} matches the pattern '{pattern_text}'")
            };
            vec![phrase.split_whitespace().collect::<Vec<_>>().join(" ")]
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let neg = if *negated { "is not" } else { "is" };
            vec![format!(
                "{} {} between {} and {}",
                expr_phrase(expr),
                neg,
                expr_phrase(low),
                expr_phrase(high)
            )]
        }
        Expr::IsNull { expr, negated } => {
            let phrase = if *negated { "is present" } else { "is missing" };
            vec![format!("{} {}", expr_phrase(expr), phrase)]
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let values: Vec<String> = list.iter().map(expr_phrase).collect();
            let neg = if *negated {
                "is not one of"
            } else {
                "is one of"
            };
            vec![format!(
                "{} {} {}",
                expr_phrase(expr),
                neg,
                values.join(", ")
            )]
        }
        Expr::InSubquery { expr, negated, .. } => {
            let neg = if *negated {
                "does not appear"
            } else {
                "appears"
            };
            vec![format!(
                "{} {} in the result of the inner step",
                expr_phrase(expr),
                neg
            )]
        }
        Expr::Exists { negated, .. } => {
            if *negated {
                vec!["no matching row exists in the inner step".to_string()]
            } else {
                vec!["a matching row exists in the inner step".to_string()]
            }
        }
        Expr::UnaryOp {
            op: bp_sql::UnaryOperator::Not,
            expr,
        } => {
            vec![format!(
                "it is not the case that {}",
                filter_phrase(expr).join(" and ")
            )]
        }
        Expr::Nested(inner) => filter_phrase(inner),
        other => vec![expr_phrase(other)],
    }
}

fn tables_phrase(select: &Select) -> String {
    let mut names = Vec::new();
    for twj in &select.from {
        collect_table_names(&twj.relation, &mut names);
        for join in &twj.joins {
            collect_table_names(&join.relation, &mut names);
        }
    }
    match names.len() {
        0 => String::new(),
        1 => format!("in the {} records", names[0]),
        _ => {
            let last = names.pop().expect("len > 1");
            format!("by combining the {} and {} records", names.join(", "), last)
        }
    }
}

fn collect_table_names(factor: &bp_sql::TableFactor, names: &mut Vec<String>) {
    match factor {
        bp_sql::TableFactor::Table { name, .. } => names.push(humanize(&name.base().value)),
        bp_sql::TableFactor::Derived { .. } => names.push("intermediate result".to_string()),
    }
}

fn plan_select(select: &Select, plan: &mut DescriptionPlan) {
    for item in &select.projection {
        match item {
            SelectItem::Wildcard => plan.projection.push("all columns".to_string()),
            SelectItem::QualifiedWildcard(name) => plan
                .projection
                .push(format!("all columns of {}", humanize(&name.base().value))),
            SelectItem::Expr { expr, .. } => plan.projection.push(expr_phrase(expr)),
        }
    }
    let tables = tables_phrase(select);
    if plan.tables.is_empty() {
        plan.tables = tables;
    }
    if let Some(selection) = &select.selection {
        plan.filters.extend(filter_phrase(selection));
    }
    if !select.group_by.is_empty() {
        let keys: Vec<String> = select.group_by.iter().map(expr_phrase).collect();
        plan.grouping = Some(format!("for each {}", keys.join(" and ")));
    }
    if let Some(having) = &select.having {
        plan.having = Some(format!(
            "keeping only groups where {}",
            filter_phrase(having).join(" and ")
        ));
    }
    if select.distinct {
        plan.projection = plan
            .projection
            .iter()
            .map(|p| format!("distinct {p}"))
            .collect();
    }
}

/// Build the faithful description plan for a query.
pub fn plan_query(query: &Query) -> DescriptionPlan {
    let mut plan = DescriptionPlan::default();
    match &query.body {
        SetExpr::Select(select) => plan_select(select, &mut plan),
        SetExpr::Query(inner) => {
            let inner_plan = plan_query(inner);
            plan = inner_plan;
        }
        SetExpr::SetOperation {
            op, left, right, ..
        } => {
            let verb = match op {
                SetOperator::Union => "combined with",
                SetOperator::Intersect => "restricted to rows also in",
                SetOperator::Except => "excluding rows found in",
            };
            if let SetExpr::Select(select) = left.as_ref() {
                plan_select(select, &mut plan);
            }
            let mut right_tables = Vec::new();
            if let SetExpr::Select(select) = right.as_ref() {
                for twj in &select.from {
                    collect_table_names(&twj.relation, &mut right_tables);
                }
            }
            plan.set_operation = Some(format!(
                "{} the corresponding rows from {}",
                verb,
                if right_tables.is_empty() {
                    "the second query".to_string()
                } else {
                    right_tables.join(" and ")
                }
            ));
        }
    }
    if !query.order_by.is_empty() {
        let keys: Vec<String> = query
            .order_by
            .iter()
            .map(|o| {
                let direction = if o.asc { "ascending" } else { "descending" };
                format!("{} in {} order", expr_phrase(&o.expr), direction)
            })
            .collect();
        plan.ordering = Some(format!("sorted by {}", keys.join(", then by ")));
    }
    if let Some(limit) = &query.limit {
        let n = expr_phrase(limit);
        plan.limit = Some(if n == "1" {
            "returning only the single top row".to_string()
        } else {
            format!("returning only the top {n} rows")
        });
    }
    // CTEs: prepend a coarse note so un-decomposed nested queries still get
    // acknowledged (the annotation loop normally decomposes them instead).
    if let Some(with) = &query.with {
        if !with.ctes.is_empty() {
            let names: Vec<String> = with.ctes.iter().map(|c| humanize(&c.name.value)).collect();
            plan.filters.push(format!(
                "using the intermediate results {}",
                names.join(", ")
            ));
        }
    }
    plan
}

/// Render a complete (undegraded) description from a plan. Style 0..=3 picks
/// among phrasing templates so the four candidates differ in surface form.
pub fn render_plan(plan: &DescriptionPlan, style: usize) -> String {
    render_components(plan, &vec![true; plan.component_count()], style)
}

/// The reference ("gold") description of a query: complete plan, style 0.
pub fn describe_query(query: &Query) -> String {
    render_plan(&plan_query(query), 0)
}

fn render_components(plan: &DescriptionPlan, included: &[bool], style: usize) -> String {
    let mut idx = 0;
    let mut take = |present: bool| -> bool {
        if !present {
            return false;
        }
        let keep = included.get(idx).copied().unwrap_or(true);
        idx += 1;
        keep
    };

    let mut projection_phrases = Vec::new();
    for phrase in &plan.projection {
        if take(true) {
            projection_phrases.push(phrase.clone());
        }
    }
    let tables = if take(!plan.tables.is_empty()) {
        Some(plan.tables.clone())
    } else {
        None
    };
    let mut filter_phrases = Vec::new();
    for phrase in &plan.filters {
        if take(true) {
            filter_phrases.push(phrase.clone());
        }
    }
    let grouping = plan
        .grouping
        .as_ref()
        .filter(|_| take(plan.grouping.is_some()))
        .cloned();
    let having = plan
        .having
        .as_ref()
        .filter(|_| take(plan.having.is_some()))
        .cloned();
    let ordering = plan
        .ordering
        .as_ref()
        .filter(|_| take(plan.ordering.is_some()))
        .cloned();
    let limit = plan
        .limit
        .as_ref()
        .filter(|_| take(plan.limit.is_some()))
        .cloned();
    let set_operation = plan
        .set_operation
        .as_ref()
        .filter(|_| take(plan.set_operation.is_some()))
        .cloned();

    let verb = match style % 4 {
        0 => "Report",
        1 => "List",
        2 => "Find",
        _ => "Show",
    };
    let projection_text = if projection_phrases.is_empty() {
        "the requested values".to_string()
    } else {
        join_natural(&projection_phrases)
    };

    let mut sentence = String::new();
    if let Some(grouping) = &grouping {
        sentence.push_str(&capitalize(grouping));
        sentence.push_str(", ");
        sentence.push_str(&verb.to_lowercase());
        sentence.push(' ');
    } else {
        sentence.push_str(verb);
        sentence.push(' ');
    }
    sentence.push_str(&projection_text);
    if let Some(tables) = &tables {
        sentence.push(' ');
        sentence.push_str(tables);
    }
    if !filter_phrases.is_empty() {
        sentence.push_str(", considering only rows where ");
        sentence.push_str(&filter_phrases.join(" and "));
    }
    if let Some(having) = &having {
        sentence.push_str(", ");
        sentence.push_str(having);
    }
    if let Some(set_operation) = &set_operation {
        sentence.push_str(", ");
        sentence.push_str(set_operation);
    }
    if let Some(ordering) = &ordering {
        sentence.push_str(", ");
        sentence.push_str(ordering);
    }
    if let Some(limit) = &limit {
        sentence.push_str(", ");
        sentence.push_str(limit);
    }
    sentence.push('.');
    sentence
}

fn join_natural(phrases: &[String]) -> String {
    match phrases.len() {
        0 => String::new(),
        1 => phrases[0].clone(),
        2 => format!("{} and {}", phrases[0], phrases[1]),
        _ => {
            let (last, rest) = phrases.split_last().expect("len > 2");
            format!("{}, and {}", rest.join(", "), last)
        }
    }
}

fn capitalize(text: &str) -> String {
    let mut chars = text.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// A request for candidate generation.
#[derive(Debug, Clone)]
pub struct GenerationRequest<'a> {
    /// The query (or decomposed unit) to describe.
    pub query: &'a Query,
    /// The assembled prompt (context quality drives fidelity).
    pub prompt: &'a Prompt,
    /// Number of domain-specific terms in the query that the prompt's
    /// knowledge section does NOT explain.
    pub unresolved_domain_terms: usize,
    /// RNG seed (BenchPress derives this from the project + query id so runs
    /// are reproducible).
    pub seed: u64,
}

/// Generate four candidate descriptions for a query.
pub fn generate_candidates(
    profile: &ModelProfile,
    request: &GenerationRequest<'_>,
) -> Vec<NlCandidate> {
    let plan = plan_query(request.query);
    let analysis = analyze(request.query);
    let fidelity = profile.effective_fidelity(
        analysis.difficulty_score(),
        request.unresolved_domain_terms,
        request.prompt.context_quality(),
    );
    let component_count = plan.component_count();
    let mut rng = ChaCha8Rng::seed_from_u64(request.seed ^ stable_hash(&request.query.to_string()));

    let mut candidates = Vec::with_capacity(CANDIDATES_PER_QUERY);
    for style in 0..CANDIDATES_PER_QUERY {
        // The first candidate is the model's "best effort"; later candidates
        // explore more varied (and slightly riskier) phrasings.
        let exploration_penalty = 0.035 * style as f64;
        let keep_probability = (fidelity - exploration_penalty).clamp(0.05, 0.99);
        let included: Vec<bool> = (0..component_count)
            .map(|_| rng.gen_bool(keep_probability))
            .collect();
        let kept = included.iter().filter(|k| **k).count();
        let mut text = render_components(&plan, &included, style);
        let hallucinated = rng.gen_bool(profile.hallucination_rate);
        if hallucinated {
            text.push_str(" Results are restricted to the most recent fiscal year.");
        }
        let completeness = if component_count == 0 {
            1.0
        } else {
            kept as f64 / component_count as f64
        };
        candidates.push(NlCandidate {
            text,
            completeness,
            hallucinated,
        });
    }
    candidates
}

/// Stable FNV-1a hash of a string (for seed derivation).
pub fn stable_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::prompt::PromptBuilder;
    use bp_sql::parse_query;

    #[test]
    fn humanize_identifiers() {
        assert_eq!(humanize("MOIRA_LIST_NAME"), "moira list name");
        assert_eq!(humanize("academicTermsAll"), "academic terms all");
        assert_eq!(humanize("gpa"), "gpa");
    }

    #[test]
    fn plan_counts_components() {
        let q = parse_query(
            "SELECT dept, COUNT(*) FROM students WHERE gpa > 3.5 GROUP BY dept ORDER BY 2 DESC LIMIT 5",
        )
        .unwrap();
        let plan = plan_query(&q);
        assert_eq!(plan.projection.len(), 2);
        assert_eq!(plan.filters.len(), 1);
        assert!(plan.grouping.is_some());
        assert!(plan.ordering.is_some());
        assert!(plan.limit.is_some());
        assert_eq!(plan.component_count(), 7);
    }

    #[test]
    fn describe_query_is_complete_and_deterministic() {
        let q = parse_query(
            "SELECT MOIRA_LIST_NAME, COUNT(DISTINCT MIT_ID) FROM MOIRA_LIST WHERE DEPT = 'EECS' GROUP BY MOIRA_LIST_NAME",
        )
        .unwrap();
        let a = describe_query(&q);
        let b = describe_query(&q);
        assert_eq!(a, b);
        assert!(a.to_lowercase().contains("moira list name"));
        assert!(a.to_lowercase().contains("number of distinct"));
        assert!(a.contains("'EECS'"));
        assert!(a.to_lowercase().contains("for each"));
    }

    #[test]
    fn like_patterns_become_starts_with() {
        let q = parse_query("SELECT name FROM lists WHERE name LIKE 'B%'").unwrap();
        let text = describe_query(&q);
        assert!(text.contains("starts with 'B'"), "got: {text}");
    }

    #[test]
    fn set_operations_are_mentioned() {
        let q = parse_query("SELECT dept FROM students EXCEPT SELECT dept FROM alumni").unwrap();
        let text = describe_query(&q);
        assert!(text.contains("excluding rows"), "got: {text}");
    }

    #[test]
    fn limit_one_special_cased() {
        let q = parse_query("SELECT name FROM t ORDER BY n DESC LIMIT 1").unwrap();
        let text = describe_query(&q);
        assert!(text.contains("single top row"), "got: {text}");
    }

    #[test]
    fn four_candidates_are_generated_and_differ_in_style() {
        let q = parse_query("SELECT dept, AVG(gpa) FROM students GROUP BY dept").unwrap();
        let prompt = PromptBuilder::new(q.to_string())
            .schema_table("CREATE TABLE students (dept VARCHAR, gpa NUMBER)")
            .build();
        let request = GenerationRequest {
            query: &q,
            prompt: &prompt,
            unresolved_domain_terms: 0,
            seed: 7,
        };
        let candidates = generate_candidates(&ModelKind::Gpt4o.profile(), &request);
        assert_eq!(candidates.len(), CANDIDATES_PER_QUERY);
        let unique: std::collections::HashSet<_> =
            candidates.iter().map(|c| c.text.clone()).collect();
        assert!(unique.len() >= 2, "candidates should vary in phrasing");
    }

    #[test]
    fn generation_is_deterministic_for_same_seed() {
        let q = parse_query("SELECT name FROM students WHERE gpa > 3.0").unwrap();
        let prompt = PromptBuilder::new(q.to_string()).build();
        let request = GenerationRequest {
            query: &q,
            prompt: &prompt,
            unresolved_domain_terms: 0,
            seed: 99,
        };
        let profile = ModelKind::DeepSeek.profile();
        let a = generate_candidates(&profile, &request);
        let b = generate_candidates(&profile, &request);
        assert_eq!(a, b);
    }

    #[test]
    fn context_improves_candidate_completeness() {
        let q = parse_query(
            "SELECT MOIRA_LIST_NAME, COUNT(DISTINCT MIT_ID) FROM MOIRA_LIST JOIN MOIRA_MEMBER ON MOIRA_LIST.MOIRA_LIST_KEY = MOIRA_MEMBER.MOIRA_LIST_KEY WHERE DEPT = 'EECS' AND MOIRA_LIST_NAME LIKE 'B%' GROUP BY MOIRA_LIST_NAME ORDER BY 2 DESC LIMIT 1",
        )
        .unwrap();
        let profile = ModelKind::Gpt35Turbo.profile();
        let bare_prompt = PromptBuilder::new(q.to_string()).build();
        let rich_prompt = PromptBuilder::new(q.to_string())
            .schema_table("CREATE TABLE MOIRA_LIST (MOIRA_LIST_KEY INT, MOIRA_LIST_NAME VARCHAR, DEPT VARCHAR)")
            .example("SELECT COUNT(*) FROM MOIRA_LIST", "How many Moira lists exist?", 0.9)
            .example("SELECT DEPT FROM MOIRA_LIST", "List the departments of Moira lists", 0.8)
            .example("SELECT MIT_ID FROM MOIRA_MEMBER", "List the MIT ids of list members", 0.8)
            .knowledge("Moira is MIT's mailing list system")
            .knowledge("EECS is the electrical engineering and computer science department")
            .build();

        let mean_completeness = |prompt| {
            let totals: f64 = (0..20)
                .map(|seed| {
                    let request = GenerationRequest {
                        query: &q,
                        prompt,
                        unresolved_domain_terms: if std::ptr::eq(prompt, &bare_prompt) {
                            2
                        } else {
                            0
                        },
                        seed,
                    };
                    generate_candidates(&profile, &request)
                        .iter()
                        .map(|c| c.completeness)
                        .sum::<f64>()
                        / CANDIDATES_PER_QUERY as f64
                })
                .sum();
            totals / 20.0
        };
        let bare = mean_completeness(&bare_prompt);
        let rich = mean_completeness(&rich_prompt);
        assert!(
            rich > bare + 0.1,
            "context should improve completeness: bare={bare:.3} rich={rich:.3}"
        );
    }

    #[test]
    fn empty_projection_renders_gracefully() {
        let plan = DescriptionPlan::default();
        let text = render_plan(&plan, 0);
        assert!(text.contains("requested values"));
        assert!(text.ends_with('.'));
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(stable_hash("abc"), stable_hash("abc"));
        assert_ne!(stable_hash("abc"), stable_hash("abd"));
    }
}
