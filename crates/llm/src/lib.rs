//! # bp-llm — deterministic simulated LLM backend for BenchPress
//!
//! The original BenchPress calls hosted models (GPT-4o, GPT-3.5 Turbo,
//! DeepSeek, Llama 3.1) for three things: proposing natural-language
//! descriptions of SQL queries, regenerating SQL from descriptions
//! (backtranslation), and — in the motivating Figure 1 experiment —
//! translating questions into SQL. This crate simulates all three with
//! deterministic, capability-profiled components so the full pipeline can be
//! reproduced offline:
//!
//! * [`model`] — model registry and capability profiles.
//! * [`prompt`] — the retrieval-augmented few-shot prompt and its
//!   context-quality score.
//! * [`sql2nl`] — schema-aware candidate generation (4 candidates/query).
//! * [`nl2sql`] — schema-grounded backtranslation used by the Figure 4
//!   clarity study.
//! * [`text2sql`] — the execution-accuracy simulation behind Figure 1.
//! * [`corrupt`] — the failure-mode operators shared by the simulators.

#![warn(missing_docs)]

pub mod corrupt;
pub mod model;
pub mod nl2sql;
pub mod prompt;
pub mod sql2nl;
pub mod text2sql;

pub use bp_storage::{ExecOptions, ExecStrategy};
pub use corrupt::{apply as apply_corruption, Corruption};
pub use model::{ModelKind, ModelProfile};
pub use nl2sql::Backtranslator;
pub use prompt::{default_instruction, FewShotExample, Prompt, PromptBuilder};
pub use sql2nl::{
    describe_query, generate_candidates, plan_query, DescriptionPlan, GenerationRequest,
    NlCandidate, CANDIDATES_PER_QUERY,
};
pub use text2sql::{
    evaluate_execution_accuracy, evaluate_execution_accuracy_cached,
    evaluate_execution_accuracy_opts, evaluate_execution_accuracy_with, predict_sql, EvalItem,
    ExecutionAccuracyReport, Text2SqlPrediction, WorkloadDifficulty,
};

#[cfg(test)]
mod round_trip_tests {
    //! End-to-end checks that the SQL→NL generator and the NL→SQL
    //! backtranslator compose the way the paper's backtranslation study
    //! assumes: complete descriptions round-trip to high rubric levels,
    //! impoverished descriptions do not.

    use super::*;
    use bp_sql::parse_query;
    use bp_storage::Catalog;

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog
            .ingest_ddl(
                "CREATE TABLE students (id INT PRIMARY KEY, name VARCHAR(40), gpa NUMBER, dept VARCHAR(20));
                 CREATE TABLE enrollments (student_id INT REFERENCES students(id), term VARCHAR(20), course VARCHAR(20));",
            )
            .unwrap();
        catalog
    }

    #[test]
    fn faithful_description_round_trips_structurally() {
        let catalog = catalog();
        let gold =
            parse_query("SELECT dept, COUNT(*) FROM students WHERE dept = 'EECS' GROUP BY dept")
                .unwrap();
        let description = describe_query(&gold);
        let regenerated =
            Backtranslator::new(&catalog, ModelKind::Gpt4o.profile()).backtranslate(&description);
        let regenerated_query = parse_query(&regenerated).expect("regenerated SQL parses");
        let gold_analysis = bp_sql::analyze(&gold);
        let regen_analysis = bp_sql::analyze(&regenerated_query);
        assert_eq!(gold_analysis.tables, regen_analysis.tables);
        assert_eq!(regen_analysis.aggregate_functions, vec!["COUNT"]);
        assert!(regen_analysis.has_group_by);
        assert!(regenerated.contains("'EECS'"));
    }

    #[test]
    fn incomplete_description_loses_information() {
        let catalog = catalog();
        // A description missing the filter cannot regenerate it.
        let description = "For each dept, report the number of students.";
        let regenerated =
            Backtranslator::new(&catalog, ModelKind::Gpt4o.profile()).backtranslate(description);
        assert!(!regenerated.to_uppercase().contains("WHERE"));
    }
}
