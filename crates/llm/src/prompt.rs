//! Prompt construction for the retrieval-augmented few-shot prompt
//! (paper §4.1 steps 4–5 and §4.2 "Prompt Engineering and Refinement").
//!
//! A [`Prompt`] bundles everything the annotation loop passes to the model:
//! the task instruction, the relevant schema tables, the top-k retrieved
//! example annotations, domain knowledge injected through the feedback loop,
//! and the annotator's current priorities. The prompt also exposes a
//! [`Prompt::context_quality`] score in `[0, 1]` that the simulated model
//! uses as the RAG-boost input — more relevant examples, more schema
//! grounding and more domain knowledge mean better candidates, mirroring the
//! accuracy gains retrieval-augmented prompting provides in the real system.

use serde::{Deserialize, Serialize};

/// One retrieved few-shot example: a previously annotated (SQL, NL) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FewShotExample {
    /// The example's SQL query.
    pub sql: String,
    /// Its accepted natural-language description.
    pub description: String,
    /// Retrieval similarity score in `[0, 1]`.
    pub similarity: f32,
}

/// The assembled prompt for one candidate-generation call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Prompt {
    /// Task instruction text.
    pub instruction: String,
    /// The SQL query (or subquery unit) being annotated.
    pub sql: String,
    /// `CREATE TABLE` statements for the relevant tables.
    pub schema_context: Vec<String>,
    /// Retrieved few-shot examples, best first.
    pub examples: Vec<FewShotExample>,
    /// Domain knowledge notes injected by annotators (feedback loop).
    pub knowledge: Vec<String>,
    /// Priorities/refinements the annotator asked the model to emphasize
    /// (e.g. "describe the filtering logic explicitly").
    pub priorities: Vec<String>,
}

/// Builder for [`Prompt`].
#[derive(Debug, Clone, Default)]
pub struct PromptBuilder {
    prompt: Prompt,
}

impl PromptBuilder {
    /// Start a prompt for the given SQL unit.
    pub fn new(sql: impl Into<String>) -> Self {
        PromptBuilder {
            prompt: Prompt {
                instruction: default_instruction(),
                sql: sql.into(),
                ..Prompt::default()
            },
        }
    }

    /// Override the instruction text.
    pub fn instruction(mut self, text: impl Into<String>) -> Self {
        self.prompt.instruction = text.into();
        self
    }

    /// Add a relevant table's `CREATE TABLE` statement.
    pub fn schema_table(mut self, ddl: impl Into<String>) -> Self {
        self.prompt.schema_context.push(ddl.into());
        self
    }

    /// Add a retrieved few-shot example.
    pub fn example(
        mut self,
        sql: impl Into<String>,
        description: impl Into<String>,
        similarity: f32,
    ) -> Self {
        self.prompt.examples.push(FewShotExample {
            sql: sql.into(),
            description: description.into(),
            similarity,
        });
        self
    }

    /// Add a domain-knowledge note.
    pub fn knowledge(mut self, note: impl Into<String>) -> Self {
        self.prompt.knowledge.push(note.into());
        self
    }

    /// Add an annotator priority.
    pub fn priority(mut self, note: impl Into<String>) -> Self {
        self.prompt.priorities.push(note.into());
        self
    }

    /// Finish building.
    pub fn build(self) -> Prompt {
        self.prompt
    }
}

/// The default instruction used by BenchPress for SQL-to-NL annotation.
pub fn default_instruction() -> String {
    "Describe what the following SQL query computes in one or two clear sentences. \
     Describe every column of the output, every calculation, any filtering logic, \
     grouping, and ordering, so a reader could reconstruct the query."
        .to_string()
}

impl Prompt {
    /// A context-quality score in `[0, 1]` combining schema grounding,
    /// retrieved-example relevance, and injected domain knowledge.
    ///
    /// The weights reflect the paper's design: schema context is always
    /// included ("the system always includes the relevant tables"), examples
    /// provide most of the phrasing guidance, and the feedback loop's
    /// knowledge keeps improving prompts over time.
    pub fn context_quality(&self) -> f64 {
        let schema_score: f64 = if self.schema_context.is_empty() {
            0.0
        } else {
            1.0
        };
        let example_score: f64 = if self.examples.is_empty() {
            0.0
        } else {
            let top: f64 = self
                .examples
                .iter()
                .take(3)
                .map(|e| e.similarity.clamp(0.0, 1.0) as f64)
                .sum::<f64>()
                / 3.0;
            // Even weakly similar examples help ground phrasing.
            (0.35 + 0.65 * top).min(1.0)
        };
        let knowledge_score: f64 = (self.knowledge.len() as f64 * 0.34).min(1.0);
        let priority_score: f64 = (self.priorities.len() as f64 * 0.5).min(1.0);
        (0.40 * schema_score
            + 0.35 * example_score
            + 0.17 * knowledge_score
            + 0.08 * priority_score)
            .clamp(0.0, 1.0)
    }

    /// Number of few-shot examples included.
    pub fn example_count(&self) -> usize {
        self.examples.len()
    }

    /// Render the prompt as the text that would be sent to a hosted LLM.
    /// (Used for token accounting in the benchmarks and for debugging.)
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("### Instruction\n");
        out.push_str(&self.instruction);
        out.push('\n');
        if !self.schema_context.is_empty() {
            out.push_str("\n### Relevant schema\n");
            for ddl in &self.schema_context {
                out.push_str(ddl);
                out.push('\n');
            }
        }
        if !self.knowledge.is_empty() {
            out.push_str("\n### Domain knowledge\n");
            for note in &self.knowledge {
                out.push_str("- ");
                out.push_str(note);
                out.push('\n');
            }
        }
        if !self.priorities.is_empty() {
            out.push_str("\n### Priorities\n");
            for note in &self.priorities {
                out.push_str("- ");
                out.push_str(note);
                out.push('\n');
            }
        }
        if !self.examples.is_empty() {
            out.push_str("\n### Examples\n");
            for example in &self.examples {
                out.push_str(&format!(
                    "SQL: {}\nNL: {}\n\n",
                    example.sql, example.description
                ));
            }
        }
        out.push_str("\n### Query to describe\n");
        out.push_str(&self.sql);
        out
    }

    /// Approximate token count of the rendered prompt (whitespace tokens);
    /// used by the prompt-efficiency benchmark.
    pub fn approximate_tokens(&self) -> usize {
        self.render().split_whitespace().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_prompt() -> Prompt {
        PromptBuilder::new("SELECT COUNT(*) FROM MOIRA_LIST")
            .schema_table("CREATE TABLE MOIRA_LIST (MOIRA_LIST_KEY INT, MOIRA_LIST_NAME VARCHAR)")
            .example(
                "SELECT COUNT(*) FROM students",
                "How many students are there?",
                0.8,
            )
            .example(
                "SELECT COUNT(DISTINCT dept) FROM students",
                "How many distinct departments are there?",
                0.7,
            )
            .knowledge("Moira is the mailing list system for newsletters.")
            .priority("describe the filtering logic")
            .build()
    }

    #[test]
    fn empty_prompt_has_zero_context() {
        let prompt = PromptBuilder::new("SELECT 1").build();
        assert_eq!(prompt.context_quality(), 0.0);
        assert_eq!(prompt.example_count(), 0);
    }

    #[test]
    fn context_quality_grows_with_content() {
        let bare = PromptBuilder::new("SELECT 1").build();
        let with_schema = PromptBuilder::new("SELECT 1")
            .schema_table("CREATE TABLE t (a INT)")
            .build();
        let full = full_prompt();
        assert!(with_schema.context_quality() > bare.context_quality());
        assert!(full.context_quality() > with_schema.context_quality());
        assert!(full.context_quality() <= 1.0);
    }

    #[test]
    fn render_contains_all_sections() {
        let text = full_prompt().render();
        assert!(text.contains("### Instruction"));
        assert!(text.contains("### Relevant schema"));
        assert!(text.contains("### Domain knowledge"));
        assert!(text.contains("### Priorities"));
        assert!(text.contains("### Examples"));
        assert!(text.contains("### Query to describe"));
        assert!(text.contains("MOIRA_LIST"));
    }

    #[test]
    fn token_estimate_is_positive_and_monotonic() {
        let bare = PromptBuilder::new("SELECT 1").build();
        let full = full_prompt();
        assert!(bare.approximate_tokens() > 0);
        assert!(full.approximate_tokens() > bare.approximate_tokens());
    }

    #[test]
    fn default_instruction_mentions_key_requirements() {
        let text = default_instruction();
        assert!(text.contains("column"));
        assert!(text.contains("grouping"));
    }

    #[test]
    fn example_similarity_is_clamped_in_scoring() {
        let prompt = PromptBuilder::new("SELECT 1")
            .example("SELECT 1", "one", 42.0)
            .build();
        assert!(prompt.context_quality() <= 1.0);
    }
}
