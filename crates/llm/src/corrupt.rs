//! Query corruption operators.
//!
//! The text-to-SQL failure modes the paper discusses (wrong tables due to
//! schema ambiguity, wrong columns, missing filters, missing grouping,
//! broken syntax) are modelled as explicit mutation operators applied to a
//! gold query. The simulated models in [`crate::text2sql`] draw from these
//! operators when they "fail", so the predicted SQL degrades the same way
//! the paper's Figure 1 and rubric levels describe.

use bp_sql::{Expr, Ident, ObjectName, Query, SelectItem, TableFactor};
use bp_storage::Catalog;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The corruption operators, ordered roughly by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Corruption {
    /// Emit syntactically invalid SQL (rubric level 1).
    BreakSyntax,
    /// Replace a referenced table with a different catalog table
    /// (rubric level 2: structurally incorrect).
    WrongTable,
    /// Replace a projected column with a sibling column (rubric level 3).
    WrongColumn,
    /// Drop a WHERE conjunct (rubric level 3).
    DropFilter,
    /// Swap an aggregate function for another (rubric level 3).
    WrongAggregate,
    /// Drop GROUP BY (rubric level 3).
    DropGroupBy,
    /// Drop ORDER BY / LIMIT (rubric level 4: minor issues).
    DropOrdering,
}

impl Corruption {
    /// All operators, most severe first.
    pub fn all() -> &'static [Corruption] {
        &[
            Corruption::BreakSyntax,
            Corruption::WrongTable,
            Corruption::WrongColumn,
            Corruption::DropFilter,
            Corruption::WrongAggregate,
            Corruption::DropGroupBy,
            Corruption::DropOrdering,
        ]
    }
}

/// Apply a corruption to a query, returning the corrupted SQL text.
///
/// `catalog` supplies alternative tables/columns for the substitution
/// operators; when no alternative exists the function falls back to a less
/// severe but always-applicable change so the output still differs from the
/// gold query.
pub fn apply<R: Rng>(
    query: &Query,
    corruption: Corruption,
    catalog: &Catalog,
    rng: &mut R,
) -> String {
    match corruption {
        Corruption::BreakSyntax => {
            let text = query.to_string();
            // Drop the FROM keyword (a classic generation failure).
            text.replacen("FROM", "FORM", 1)
        }
        Corruption::WrongTable => {
            let mut mutated = query.clone();
            let current_tables = referenced_tables(&mutated);
            let alternatives: Vec<String> = catalog
                .tables()
                .map(|t| t.name.clone())
                .filter(|name| !current_tables.contains(&name.to_ascii_uppercase()))
                .collect();
            if let (Some(target), Some(replacement)) = (
                current_tables.first().cloned(),
                alternatives.choose(rng).cloned(),
            ) {
                replace_table(&mut mutated, &target, &replacement);
                mutated.to_string()
            } else {
                // No alternative table exists; degrade to a column error.
                apply(query, Corruption::WrongColumn, catalog, rng)
            }
        }
        Corruption::WrongColumn => {
            let mut mutated = query.clone();
            if !swap_first_projection_column(&mut mutated, catalog, rng) {
                // Nothing to swap; drop a filter instead.
                return apply(query, Corruption::DropFilter, catalog, rng);
            }
            mutated.to_string()
        }
        Corruption::DropFilter => {
            let mut mutated = query.clone();
            if let Some(select) = mutated.top_select_mut() {
                if select.selection.take().is_none() {
                    select.having = None;
                }
            }
            mutated.to_string()
        }
        Corruption::WrongAggregate => {
            let mut mutated = query.clone();
            if !swap_aggregate(&mut mutated) {
                return apply(query, Corruption::DropFilter, catalog, rng);
            }
            mutated.to_string()
        }
        Corruption::DropGroupBy => {
            let mut mutated = query.clone();
            if let Some(select) = mutated.top_select_mut() {
                select.group_by.clear();
                select.having = None;
                // Also drop bare grouped columns from the projection so the
                // query still "makes sense" without grouping.
                select.projection.retain(|item| {
                    !matches!(item, SelectItem::Expr { expr, .. } if matches!(expr, Expr::Identifier(_) | Expr::CompoundIdentifier(_)))
                });
                if select.projection.is_empty() {
                    select.projection.push(SelectItem::expr(Expr::count_star()));
                }
            }
            mutated.to_string()
        }
        Corruption::DropOrdering => {
            let mut mutated = query.clone();
            mutated.order_by.clear();
            mutated.limit = None;
            mutated.offset = None;
            mutated.to_string()
        }
    }
}

/// The uppercase base names of tables referenced by a query's FROM clauses.
pub fn referenced_tables(query: &Query) -> Vec<String> {
    bp_sql::analyze(query).tables.into_iter().collect()
}

fn replace_table(query: &mut Query, target_upper: &str, replacement: &str) {
    fn walk_factor(factor: &mut TableFactor, target: &str, replacement: &str) {
        match factor {
            TableFactor::Table { name, .. } => {
                if name.base().normalized() == target {
                    *name = ObjectName(vec![Ident::new(replacement)]);
                }
            }
            TableFactor::Derived { subquery, .. } => walk_query(subquery, target, replacement),
        }
    }
    fn walk_query(query: &mut Query, target: &str, replacement: &str) {
        if let Some(with) = &mut query.with {
            for cte in &mut with.ctes {
                walk_query(&mut cte.query, target, replacement);
            }
        }
        if let Some(select) = query.top_select_mut() {
            for twj in &mut select.from {
                walk_factor(&mut twj.relation, target, replacement);
                for join in &mut twj.joins {
                    walk_factor(&mut join.relation, target, replacement);
                }
            }
        }
    }
    walk_query(query, target_upper, replacement);
}

fn swap_first_projection_column<R: Rng>(query: &mut Query, catalog: &Catalog, rng: &mut R) -> bool {
    let tables = referenced_tables(query);
    let Some(select) = query.top_select_mut() else {
        return false;
    };
    for item in &mut select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            let current = match expr {
                Expr::Identifier(i) => Some(i.value.clone()),
                Expr::CompoundIdentifier(parts) => parts.last().map(|p| p.value.clone()),
                _ => None,
            };
            let Some(current) = current else { continue };
            // Candidate replacement columns come from the referenced tables.
            let mut alternatives: Vec<String> = Vec::new();
            for table in &tables {
                if let Some(schema) = catalog.table(table) {
                    for column in &schema.columns {
                        if !column.name.eq_ignore_ascii_case(&current) {
                            alternatives.push(column.name.clone());
                        }
                    }
                }
            }
            if let Some(replacement) = alternatives.choose(rng) {
                *expr = Expr::col(replacement.clone());
                return true;
            }
        }
    }
    false
}

fn swap_aggregate(query: &mut Query) -> bool {
    fn swap_in_expr(expr: &mut Expr) -> bool {
        match expr {
            Expr::Function { name, .. } => {
                let replacement = match name.value.to_ascii_uppercase().as_str() {
                    "COUNT" => "SUM",
                    "SUM" => "AVG",
                    "AVG" => "MAX",
                    "MAX" => "MIN",
                    "MIN" => "MAX",
                    _ => return false,
                };
                *name = Ident::new(replacement);
                true
            }
            Expr::BinaryOp { left, right, .. } => swap_in_expr(left) || swap_in_expr(right),
            Expr::Nested(inner) | Expr::Cast { expr: inner, .. } => swap_in_expr(inner),
            _ => false,
        }
    }
    let Some(select) = query.top_select_mut() else {
        return false;
    };
    for item in &mut select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            if swap_in_expr(expr) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp_sql::{parse_query, DataType};
    use bp_storage::{Column, TableSchema};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog
            .add_table(TableSchema::new(
                "students",
                vec![
                    Column::new("id", DataType::Integer),
                    Column::new("name", DataType::Text),
                    Column::new("gpa", DataType::Float),
                    Column::new("dept", DataType::Text),
                ],
            ))
            .unwrap();
        catalog
            .add_table(TableSchema::new(
                "enrollments",
                vec![
                    Column::new("student_id", DataType::Integer),
                    Column::new("term", DataType::Text),
                ],
            ))
            .unwrap();
        catalog
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn break_syntax_produces_unparseable_sql() {
        let q = parse_query("SELECT name FROM students").unwrap();
        let text = apply(&q, Corruption::BreakSyntax, &catalog(), &mut rng());
        assert!(bp_sql::parse_query(&text).is_err());
    }

    #[test]
    fn wrong_table_swaps_to_another_catalog_table() {
        let q = parse_query("SELECT name FROM students WHERE gpa > 3").unwrap();
        let text = apply(&q, Corruption::WrongTable, &catalog(), &mut rng());
        assert!(text.contains("enrollments"), "got: {text}");
        assert!(!text.to_uppercase().contains("FROM STUDENTS"));
        bp_sql::parse_query(&text).expect("still parses");
    }

    #[test]
    fn wrong_column_changes_projection() {
        let q = parse_query("SELECT name FROM students").unwrap();
        let text = apply(&q, Corruption::WrongColumn, &catalog(), &mut rng());
        assert!(!text.contains("SELECT name"), "got: {text}");
        bp_sql::parse_query(&text).expect("still parses");
    }

    #[test]
    fn drop_filter_removes_where() {
        let q = parse_query("SELECT name FROM students WHERE gpa > 3.5").unwrap();
        let text = apply(&q, Corruption::DropFilter, &catalog(), &mut rng());
        assert!(!text.to_uppercase().contains("WHERE"));
    }

    #[test]
    fn wrong_aggregate_swaps_function() {
        let q = parse_query("SELECT COUNT(*) FROM students").unwrap();
        let text = apply(&q, Corruption::WrongAggregate, &catalog(), &mut rng());
        assert!(text.contains("SUM"), "got: {text}");
    }

    #[test]
    fn drop_group_by_removes_grouping() {
        let q = parse_query("SELECT dept, COUNT(*) FROM students GROUP BY dept").unwrap();
        let text = apply(&q, Corruption::DropGroupBy, &catalog(), &mut rng());
        assert!(!text.to_uppercase().contains("GROUP BY"));
        bp_sql::parse_query(&text).expect("still parses");
    }

    #[test]
    fn drop_ordering_removes_order_and_limit() {
        let q = parse_query("SELECT name FROM students ORDER BY gpa DESC LIMIT 3").unwrap();
        let text = apply(&q, Corruption::DropOrdering, &catalog(), &mut rng());
        assert!(!text.to_uppercase().contains("ORDER BY"));
        assert!(!text.to_uppercase().contains("LIMIT"));
    }

    #[test]
    fn operators_fall_back_when_not_applicable() {
        // A projection-less aggregate query cannot get a wrong column; the
        // operator must still return something different or at least valid.
        let q = parse_query("SELECT COUNT(*) FROM students WHERE gpa > 3").unwrap();
        let text = apply(&q, Corruption::WrongColumn, &catalog(), &mut rng());
        bp_sql::parse_query(&text).expect("fallback output parses");
        let single_table_catalog = {
            let mut c = Catalog::new();
            c.add_table(TableSchema::new(
                "students",
                vec![Column::new("id", DataType::Integer)],
            ))
            .unwrap();
            c
        };
        let text = apply(
            &q,
            Corruption::WrongTable,
            &single_table_catalog,
            &mut rng(),
        );
        bp_sql::parse_query(&text).expect("fallback output parses");
    }

    #[test]
    fn referenced_tables_reports_from_clause() {
        let q = parse_query("SELECT * FROM a JOIN b ON a.x = b.x").unwrap();
        let tables = referenced_tables(&q);
        assert!(tables.contains(&"A".to_string()));
        assert!(tables.contains(&"B".to_string()));
    }
}
