//! Simulated LLM model registry and capability profiles.
//!
//! The paper evaluates GPT-4o, GPT-3.5 Turbo, DeepSeek, and Llama 3.1
//! variants. This reproduction replaces hosted models with deterministic
//! capability profiles: each model has a base fidelity, a sensitivity to
//! query complexity and domain-specific vocabulary, and a responsiveness to
//! retrieval-augmented context. The pipeline around the model (retrieval,
//! decomposition, feedback) is identical to the real system; only the text
//! generation itself is simulated.

use serde::{Deserialize, Serialize};

/// The models selectable in BenchPress's task configuration (paper §4.1,
/// step 3), plus the evaluation-only models of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// GPT-4o — strongest general model.
    Gpt4o,
    /// GPT-3.5 Turbo — weaker, cheaper.
    Gpt35Turbo,
    /// DeepSeek — strong open model.
    DeepSeek,
    /// Llama 3.1 70B (lightly tuned) — Figure 1 baseline.
    Llama70B,
    /// Llama 3.1 8B (lightly tuned) — Figure 1 baseline.
    Llama8B,
    /// The best enterprise-tuned model on Beaver ("contextModel" in Fig. 1).
    ContextModel,
}

impl ModelKind {
    /// Display name used in reports and exports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gpt4o => "GPT-4o",
            ModelKind::Gpt35Turbo => "GPT-3.5 Turbo",
            ModelKind::DeepSeek => "DeepSeek",
            ModelKind::Llama70B => "Llama3.1-70B-lt",
            ModelKind::Llama8B => "Llama3.1-8B-lt",
            ModelKind::ContextModel => "contextModel",
        }
    }

    /// All models.
    pub fn all() -> &'static [ModelKind] {
        &[
            ModelKind::Gpt4o,
            ModelKind::Gpt35Turbo,
            ModelKind::DeepSeek,
            ModelKind::Llama70B,
            ModelKind::Llama8B,
            ModelKind::ContextModel,
        ]
    }

    /// The models a BenchPress user can pick in task configuration
    /// (the paper lists GPT-4o, GPT-3.5 Turbo, DeepSeek).
    pub fn annotation_models() -> &'static [ModelKind] {
        &[ModelKind::Gpt4o, ModelKind::Gpt35Turbo, ModelKind::DeepSeek]
    }

    /// The capability profile of this model.
    pub fn profile(&self) -> ModelProfile {
        match self {
            ModelKind::Gpt4o => ModelProfile {
                kind: *self,
                base_fidelity: 0.92,
                context_boost: 0.9,
                complexity_sensitivity: 0.035,
                domain_sensitivity: 0.22,
                hallucination_rate: 0.04,
                sql_skill: 0.93,
            },
            ModelKind::Gpt35Turbo => ModelProfile {
                kind: *self,
                base_fidelity: 0.80,
                context_boost: 0.75,
                complexity_sensitivity: 0.055,
                domain_sensitivity: 0.30,
                hallucination_rate: 0.10,
                sql_skill: 0.78,
            },
            ModelKind::DeepSeek => ModelProfile {
                kind: *self,
                base_fidelity: 0.88,
                context_boost: 0.85,
                complexity_sensitivity: 0.04,
                domain_sensitivity: 0.26,
                hallucination_rate: 0.06,
                sql_skill: 0.88,
            },
            ModelKind::Llama70B => ModelProfile {
                kind: *self,
                base_fidelity: 0.84,
                context_boost: 0.7,
                complexity_sensitivity: 0.05,
                domain_sensitivity: 0.3,
                hallucination_rate: 0.08,
                sql_skill: 0.82,
            },
            ModelKind::Llama8B => ModelProfile {
                kind: *self,
                base_fidelity: 0.68,
                context_boost: 0.55,
                complexity_sensitivity: 0.075,
                domain_sensitivity: 0.38,
                hallucination_rate: 0.16,
                sql_skill: 0.62,
            },
            ModelKind::ContextModel => ModelProfile {
                kind: *self,
                base_fidelity: 0.86,
                context_boost: 0.95,
                complexity_sensitivity: 0.045,
                domain_sensitivity: 0.12,
                hallucination_rate: 0.07,
                sql_skill: 0.84,
            },
        }
    }
}

/// A model's capability parameters.
///
/// All probabilities are in `[0, 1]`; sensitivities are per-unit penalties
/// applied to the relevant difficulty features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Which model this profile describes.
    pub kind: ModelKind,
    /// Probability of describing / translating a simple component correctly
    /// with no context.
    pub base_fidelity: f64,
    /// How strongly retrieval-augmented context improves fidelity (fraction
    /// of the remaining error the context removes at full context quality).
    pub context_boost: f64,
    /// Fidelity penalty per unit of query difficulty
    /// (see [`bp_sql::QueryAnalysis::difficulty_score`]).
    pub complexity_sensitivity: f64,
    /// Fidelity penalty per unresolved domain-specific term.
    pub domain_sensitivity: f64,
    /// Probability of inventing content not present in the SQL.
    pub hallucination_rate: f64,
    /// Skill at producing executable SQL in text-to-SQL mode (Figure 1).
    pub sql_skill: f64,
}

impl ModelProfile {
    /// Effective per-component fidelity for SQL-to-NL generation, given the
    /// query difficulty, the number of unresolved domain terms, and the
    /// quality of retrieved context in `[0, 1]`.
    pub fn effective_fidelity(
        &self,
        difficulty: f64,
        unresolved_domain_terms: usize,
        context_quality: f64,
    ) -> f64 {
        let raw = self.base_fidelity
            - self.complexity_sensitivity * difficulty
            - self.domain_sensitivity * unresolved_domain_terms as f64;
        let raw = raw.clamp(0.05, 0.99);
        // Context closes part of the gap to (near-)perfect fidelity.
        let boosted = raw + (0.985 - raw) * (self.context_boost * context_quality.clamp(0.0, 1.0));
        boosted.clamp(0.05, 0.99)
    }

    /// Effective probability of producing an execution-correct SQL query in
    /// text-to-SQL mode, given difficulty, schema ambiguity in `[0, 1]`, and
    /// the number of domain-specific terms in the question.
    pub fn text2sql_success_probability(
        &self,
        difficulty: f64,
        schema_ambiguity: f64,
        domain_terms: usize,
    ) -> f64 {
        let penalty = self.complexity_sensitivity * 1.6 * difficulty
            + 1.1 * schema_ambiguity
            + self.domain_sensitivity * 1.15 * domain_terms as f64;
        (self.sql_skill - penalty).clamp(0.0, 0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_has_a_profile_with_sane_ranges() {
        for kind in ModelKind::all() {
            let p = kind.profile();
            assert_eq!(p.kind, *kind);
            assert!((0.0..=1.0).contains(&p.base_fidelity));
            assert!((0.0..=1.0).contains(&p.context_boost));
            assert!((0.0..=1.0).contains(&p.hallucination_rate));
            assert!((0.0..=1.0).contains(&p.sql_skill));
            assert!(p.complexity_sensitivity > 0.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            ModelKind::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), ModelKind::all().len());
    }

    #[test]
    fn gpt4o_is_stronger_than_llama8b() {
        let strong = ModelKind::Gpt4o.profile();
        let weak = ModelKind::Llama8B.profile();
        assert!(strong.base_fidelity > weak.base_fidelity);
        assert!(strong.sql_skill > weak.sql_skill);
        assert!(strong.effective_fidelity(5.0, 1, 0.0) > weak.effective_fidelity(5.0, 1, 0.0));
    }

    #[test]
    fn context_improves_fidelity() {
        let p = ModelKind::Gpt35Turbo.profile();
        let without = p.effective_fidelity(8.0, 2, 0.0);
        let with = p.effective_fidelity(8.0, 2, 1.0);
        assert!(with > without);
        assert!(with <= 0.99);
    }

    #[test]
    fn difficulty_and_domain_terms_reduce_fidelity() {
        let p = ModelKind::Gpt4o.profile();
        assert!(p.effective_fidelity(2.0, 0, 0.0) > p.effective_fidelity(15.0, 0, 0.0));
        assert!(p.effective_fidelity(5.0, 0, 0.0) > p.effective_fidelity(5.0, 3, 0.0));
    }

    #[test]
    fn fidelity_is_always_a_probability() {
        let p = ModelKind::Llama8B.profile();
        for difficulty in [0.0, 5.0, 50.0, 500.0] {
            for terms in [0usize, 1, 10, 100] {
                for ctx in [0.0, 0.5, 1.0] {
                    let f = p.effective_fidelity(difficulty, terms, ctx);
                    assert!((0.0..=1.0).contains(&f));
                }
            }
        }
    }

    #[test]
    fn text2sql_probability_collapses_on_enterprise_difficulty() {
        // Public-benchmark-style query: easy, unambiguous, no domain terms.
        let easy = ModelKind::Gpt4o
            .profile()
            .text2sql_success_probability(2.0, 0.1, 0);
        // Enterprise query: hard, ambiguous schema, several domain terms.
        let hard = ModelKind::Gpt4o
            .profile()
            .text2sql_success_probability(14.0, 0.6, 3);
        assert!(easy > 0.6);
        assert!(hard < 0.05);
    }
}
