//! Simulated text-to-SQL inference (the workload behind Figure 1).
//!
//! Given a natural-language question, the gold SQL it corresponds to, and a
//! description of the target database, a simulated model either reproduces
//! the gold query (success) or produces a corrupted variant whose failure
//! mode matches the paper's qualitative analysis: easy, unambiguous public
//! benchmark queries mostly succeed, while complex enterprise queries over
//! ambiguous schemas with domain-specific vocabulary collapse to near-zero
//! execution accuracy.

use crate::corrupt::{apply, Corruption};
use crate::model::ModelProfile;
use crate::sql2nl::stable_hash;
use bp_sql::{analyze, Query};
use bp_storage::{
    batch_map, results_match, Catalog, Database, ExecOptions, ExecStrategy, PlanCache, Snapshot,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Characteristics of the target workload/database that drive difficulty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkloadDifficulty {
    /// Schema ambiguity in `[0, 1]` (duplicated column names, overlapping
    /// tables — Table 2's low uniqueness / low type diversity).
    pub schema_ambiguity: f64,
    /// Number of domain-specific terms in the question that the model cannot
    /// resolve without enterprise knowledge.
    pub domain_terms: usize,
}

/// The outcome of one simulated text-to-SQL inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Text2SqlPrediction {
    /// The SQL the model produced.
    pub sql: String,
    /// Whether the simulation decided this inference succeeds semantically
    /// (before execution verification).
    pub intended_success: bool,
    /// The corruption applied on failure, if any.
    pub corruption: Option<Corruption>,
}

/// Simulate a model translating a question into SQL.
///
/// The gold query is used as the target the model is trying to reach; on a
/// success draw the gold SQL is reproduced (with canonical formatting), on a
/// failure draw a corruption whose severity scales with how badly the draw
/// missed is applied.
pub fn predict_sql<R: Rng>(
    profile: &ModelProfile,
    gold: &Query,
    difficulty: WorkloadDifficulty,
    catalog: &Catalog,
    rng: &mut R,
) -> Text2SqlPrediction {
    let analysis = analyze(gold);
    let success_probability = profile.text2sql_success_probability(
        analysis.difficulty_score(),
        difficulty.schema_ambiguity,
        difficulty.domain_terms,
    );
    let draw: f64 = rng.gen();
    if draw < success_probability {
        return Text2SqlPrediction {
            sql: gold.to_string(),
            intended_success: true,
            corruption: None,
        };
    }
    // How badly the draw missed determines the severity of the mistake.
    // Schema ambiguity and unresolved domain terms push failures toward the
    // severe end (wrong tables/columns): with duplicated column names and
    // opaque vocabulary the model binds to the wrong schema elements, which
    // is exactly the enterprise failure mode the paper describes.
    let miss = (draw - success_probability) / (1.0 - success_probability).max(1e-9);
    let severity =
        miss + 0.45 * difficulty.schema_ambiguity + 0.12 * difficulty.domain_terms as f64;
    let corruption = if severity > 1.25 {
        Corruption::BreakSyntax
    } else if severity > 0.62 {
        Corruption::WrongTable
    } else if severity > 0.45 {
        Corruption::WrongColumn
    } else if severity > 0.32 {
        Corruption::DropFilter
    } else if severity > 0.20 && analysis.aggregate_count > 0 {
        Corruption::WrongAggregate
    } else if severity > 0.10 && analysis.has_group_by {
        Corruption::DropGroupBy
    } else {
        Corruption::DropOrdering
    };
    Text2SqlPrediction {
        sql: apply(gold, corruption, catalog, rng),
        intended_success: false,
        corruption: Some(corruption),
    }
}

/// One (question, gold SQL) evaluation item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalItem {
    /// The natural-language question.
    pub question: String,
    /// The gold SQL text.
    pub gold_sql: String,
    /// Per-item difficulty characteristics.
    pub difficulty: WorkloadDifficulty,
}

/// Result of evaluating a model on a workload.
///
/// **Denominator semantics.** `total` counts every item in the workload.
/// Items whose *gold* SQL fails to parse, plan or execute are corpus
/// defects the model never saw; they are reported in `gold_invalid` and
/// excluded from the accuracy denominator (`total - gold_invalid`, the
/// *gradable* items). `invalid` counts gradable items whose *predicted*
/// SQL failed — those are model failures and stay in the denominator.
/// The invariant is `correct + invalid <= total - gold_invalid <= total`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionAccuracyReport {
    /// Model display name.
    pub model: String,
    /// Number of items in the workload, gradable or not.
    pub total: usize,
    /// Number of gradable items whose predicted SQL executed to the gold
    /// result.
    pub correct: usize,
    /// Number of gradable items whose *prediction* failed to parse, plan
    /// or execute — a model failure, counted against accuracy.
    pub invalid: usize,
    /// Number of items whose *gold* SQL failed to parse, plan or execute —
    /// a corpus defect, excluded from the accuracy denominator.
    pub gold_invalid: usize,
}

impl ExecutionAccuracyReport {
    /// Number of items actually graded: `total - gold_invalid`. Saturating,
    /// so a hand-built or deserialized report violating the documented
    /// invariant degrades to 0 instead of panicking.
    pub fn gradable(&self) -> usize {
        self.total.saturating_sub(self.gold_invalid)
    }

    /// Execution accuracy in percent: `correct / gradable` (0 when no item
    /// is gradable). Gold-side corpus defects do not deflate the score;
    /// invalid *predictions* do.
    pub fn accuracy_percent(&self) -> f64 {
        if self.gradable() == 0 {
            0.0
        } else {
            self.correct as f64 / self.gradable() as f64 * 100.0
        }
    }
}

/// How one evaluation item was graded — the per-item unit the batch
/// pipeline's workers produce and the in-order merge folds into an
/// [`ExecutionAccuracyReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemOutcome {
    /// Prediction executed to the gold result set.
    Correct,
    /// Prediction executed but its result differs from gold.
    Incorrect,
    /// Prediction failed to parse, plan or execute.
    InvalidPrediction,
    /// Gold SQL failed to parse, plan or execute (corpus defect).
    GoldInvalid,
}

/// Evaluate a model's execution accuracy over a workload against a database
/// with the default execution strategy (the planned engine).
///
/// Every prediction is executed on `db` and compared to the gold result with
/// the Spider/Bird execution-accuracy convention (see
/// [`bp_storage::results_match`]). Grading runs the inter-query batch
/// pipeline (see [`evaluate_execution_accuracy_opts`]) across all available
/// hardware threads; the whole run is deterministic for a given `seed`
/// regardless of thread count.
pub fn evaluate_execution_accuracy(
    profile: &ModelProfile,
    items: &[EvalItem],
    db: &Database,
    seed: u64,
) -> ExecutionAccuracyReport {
    evaluate_execution_accuracy_opts(profile, items, db, seed, ExecOptions::default())
}

/// [`evaluate_execution_accuracy`] with an explicit engine choice at full
/// parallelism — grading million-entry logs wants [`ExecStrategy::Planned`]
/// (the columnar batch engine); differential checks of the grader itself can
/// pin [`ExecStrategy::RowPlanned`] (the row-at-a-time representation
/// oracle) or [`ExecStrategy::Legacy`] (the interpreter oracle).
pub fn evaluate_execution_accuracy_with(
    profile: &ModelProfile,
    items: &[EvalItem],
    db: &Database,
    seed: u64,
    strategy: ExecStrategy,
) -> ExecutionAccuracyReport {
    evaluate_execution_accuracy_opts(profile, items, db, seed, ExecOptions::new(strategy))
}

/// [`evaluate_execution_accuracy`] with full [`ExecOptions`] control.
///
/// This is the **inter-query batch pipeline**: `options.threads` sizes a
/// deterministic work-stealing worker pool ([`bp_storage::batch_map`]) that
/// fans the *items* out, while each item executes its two queries
/// single-threaded — for corpus grading, parallelism across thousands of
/// independent items beats parallelism inside one small query, and the two
/// never compose well (nested pools just contend). All workers share one
/// LRU [`PlanCache`], so each distinct SQL text (every gold query, and
/// every prediction that reproduces one) is parsed, planned and compiled
/// exactly once per run.
///
/// The report is **byte-identical at every thread count** and equal to a
/// serial loop over the items, by construction: each item's RNG is
/// independently seeded from `(seed, gold SQL, index)`, query execution is
/// deterministic, and per-item outcomes are merged in input order.
pub fn evaluate_execution_accuracy_opts(
    profile: &ModelProfile,
    items: &[EvalItem],
    db: &Database,
    seed: u64,
    options: ExecOptions,
) -> ExecutionAccuracyReport {
    let cache = PlanCache::with_default_capacity();
    evaluate_execution_accuracy_cached(profile, items, db, seed, options, &cache)
}

/// [`evaluate_execution_accuracy_opts`] grading through a caller-supplied
/// [`PlanCache`], so long-lived services (and repeated study runs over the
/// same corpus) reuse compiled plans across calls. The whole run grades one
/// [`Snapshot`] taken up front: a writer streaming inserts concurrently
/// never perturbs in-flight grading, and the cache's per-table-version
/// invalidation recompiles stale entries automatically on the first call
/// after a write. Cache sharing never changes the report — only how often
/// compilation happens.
pub fn evaluate_execution_accuracy_cached(
    profile: &ModelProfile,
    items: &[EvalItem],
    db: &Database,
    seed: u64,
    options: ExecOptions,
    cache: &PlanCache,
) -> ExecutionAccuracyReport {
    let snapshot = db.snapshot();
    let item_options = ExecOptions::new(options.strategy).with_threads(1);
    let outcomes = batch_map(options.threads.max(1), items.len(), |index| {
        Ok::<_, std::convert::Infallible>(grade_item(
            profile,
            &items[index],
            index,
            &snapshot,
            seed,
            cache,
            item_options,
        ))
    })
    .expect("grading items is infallible");
    let mut report = ExecutionAccuracyReport {
        model: profile.kind.name().to_string(),
        total: items.len(),
        correct: 0,
        invalid: 0,
        gold_invalid: 0,
    };
    for outcome in outcomes {
        match outcome {
            ItemOutcome::Correct => report.correct += 1,
            ItemOutcome::Incorrect => {}
            ItemOutcome::InvalidPrediction => report.invalid += 1,
            ItemOutcome::GoldInvalid => report.gold_invalid += 1,
        }
    }
    report
}

/// Grade one evaluation item: prepare and execute the gold query (failures
/// are corpus defects → [`ItemOutcome::GoldInvalid`]), simulate the model's
/// prediction, execute it (failures are model errors →
/// [`ItemOutcome::InvalidPrediction`]) and compare result sets. Prepared
/// plans come from the shared `cache`, so repeated SQL texts compile once.
fn grade_item(
    profile: &ModelProfile,
    item: &EvalItem,
    index: usize,
    snapshot: &Snapshot,
    seed: u64,
    cache: &PlanCache,
    options: ExecOptions,
) -> ItemOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed ^ stable_hash(&item.gold_sql) ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15),
    );
    // Gold side first: an item whose gold SQL cannot run was never a fair
    // test of the model, whatever its prediction would have done.
    let gold = match cache.get(snapshot, &item.gold_sql) {
        Ok(prepared) => prepared,
        Err(_) => return ItemOutcome::GoldInvalid,
    };
    let gold_result = match gold.execute(options) {
        Ok(result) => result,
        Err(_) => return ItemOutcome::GoldInvalid,
    };
    let prediction = predict_sql(
        profile,
        gold.query(),
        item.difficulty,
        snapshot.catalog(),
        &mut rng,
    );
    let predicted_result = match cache
        .get(snapshot, &prediction.sql)
        .and_then(|p| p.execute(options))
    {
        Ok(result) => result,
        Err(_) => return ItemOutcome::InvalidPrediction,
    };
    if results_match(&gold_result, &predicted_result) {
        ItemOutcome::Correct
    } else {
        ItemOutcome::Incorrect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use bp_sql::parse_query;

    fn campus_db() -> Database {
        let mut db = Database::new("campus");
        db.ingest_ddl(
            "CREATE TABLE students (id INT PRIMARY KEY, name VARCHAR(40), gpa NUMBER, dept VARCHAR(20));
             CREATE TABLE enrollments (student_id INT, term VARCHAR(20), course VARCHAR(20));",
        )
        .unwrap();
        db.insert_into(
            "students",
            (0..40)
                .map(|i| {
                    vec![
                        i.into(),
                        format!("student_{i}").into(),
                        (2.0 + (i % 20) as f64 / 10.0).into(),
                        if i % 2 == 0 {
                            "EECS".into()
                        } else {
                            "MATH".into()
                        },
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        db.insert_into(
            "enrollments",
            (0..40)
                .map(|i| {
                    vec![
                        i.into(),
                        if i % 4 == 0 {
                            "J-term".into()
                        } else {
                            "Fall".into()
                        },
                        format!("6.{i:03}").into(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        db
    }

    fn easy_items() -> Vec<EvalItem> {
        vec![
            EvalItem {
                question: "How many students are there?".into(),
                gold_sql: "SELECT COUNT(*) FROM students".into(),
                difficulty: WorkloadDifficulty::default(),
            },
            EvalItem {
                question: "List the names of EECS students".into(),
                gold_sql: "SELECT name FROM students WHERE dept = 'EECS'".into(),
                difficulty: WorkloadDifficulty::default(),
            },
            EvalItem {
                question: "Average gpa per department".into(),
                gold_sql: "SELECT dept, AVG(gpa) FROM students GROUP BY dept".into(),
                difficulty: WorkloadDifficulty::default(),
            },
        ]
    }

    fn hard_items() -> Vec<EvalItem> {
        vec![
            EvalItem {
                question: "J-term enrollment counts per department for high-GPA students".into(),
                gold_sql: "SELECT s.dept, COUNT(DISTINCT e.student_id) FROM students s JOIN enrollments e ON s.id = e.student_id WHERE e.term = 'J-term' AND s.gpa > (SELECT AVG(gpa) FROM students) GROUP BY s.dept ORDER BY 2 DESC"
                    .into(),
                difficulty: WorkloadDifficulty {
                    schema_ambiguity: 0.6,
                    domain_terms: 3,
                },
            };
            5
        ]
    }

    #[test]
    fn prediction_is_gold_or_corrupted() {
        let db = campus_db();
        let gold = parse_query("SELECT COUNT(*) FROM students").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let prediction = predict_sql(
            &ModelKind::Gpt4o.profile(),
            &gold,
            WorkloadDifficulty::default(),
            db.catalog(),
            &mut rng,
        );
        if prediction.intended_success {
            assert_eq!(prediction.sql, gold.to_string());
            assert!(prediction.corruption.is_none());
        } else {
            assert!(prediction.corruption.is_some());
        }
    }

    #[test]
    fn strong_model_beats_weak_model_on_easy_workload() {
        let db = campus_db();
        let strong =
            evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &easy_items(), &db, 7);
        let weak =
            evaluate_execution_accuracy(&ModelKind::Llama8B.profile(), &easy_items(), &db, 7);
        assert!(strong.accuracy_percent() >= weak.accuracy_percent());
        assert_eq!(strong.total, 3);
    }

    #[test]
    fn enterprise_difficulty_collapses_accuracy() {
        let db = campus_db();
        let profile = ModelKind::Gpt4o.profile();
        // Run the same items many times via different seeds to smooth noise.
        let mut easy_correct = 0usize;
        let mut hard_correct = 0usize;
        let mut easy_total = 0usize;
        let mut hard_total = 0usize;
        for seed in 0..10 {
            let easy = evaluate_execution_accuracy(&profile, &easy_items(), &db, seed);
            let hard = evaluate_execution_accuracy(&profile, &hard_items(), &db, seed);
            easy_correct += easy.correct;
            easy_total += easy.total;
            hard_correct += hard.correct;
            hard_total += hard.total;
        }
        let easy_acc = easy_correct as f64 / easy_total as f64;
        let hard_acc = hard_correct as f64 / hard_total as f64;
        assert!(easy_acc > 0.6, "easy accuracy too low: {easy_acc}");
        assert!(hard_acc < 0.2, "hard accuracy too high: {hard_acc}");
    }

    #[test]
    fn grading_agrees_across_execution_engines() {
        let db = campus_db();
        let profile = ModelKind::Gpt4o.profile();
        for items in [easy_items(), hard_items()] {
            let planned =
                evaluate_execution_accuracy_with(&profile, &items, &db, 11, ExecStrategy::Planned);
            let legacy =
                evaluate_execution_accuracy_with(&profile, &items, &db, 11, ExecStrategy::Legacy);
            assert_eq!(planned, legacy);
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let db = campus_db();
        let profile = ModelKind::DeepSeek.profile();
        let a = evaluate_execution_accuracy(&profile, &easy_items(), &db, 123);
        let b = evaluate_execution_accuracy(&profile, &easy_items(), &db, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn gold_side_failures_count_as_gold_invalid_not_invalid() {
        let db = campus_db();
        // Unparseable gold: the model never saw a real item.
        let unparseable = vec![EvalItem {
            question: "broken".into(),
            gold_sql: "NOT REAL SQL".into(),
            difficulty: WorkloadDifficulty::default(),
        }];
        let report = evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &unparseable, &db, 1);
        assert_eq!(report.gold_invalid, 1);
        assert_eq!(report.invalid, 0);
        assert_eq!(report.correct, 0);
        assert_eq!(report.gradable(), 0);
        assert_eq!(report.accuracy_percent(), 0.0);
        // Gold that parses but fails at execution time is a corpus defect
        // too — it must land in gold_invalid, not be silently dropped.
        let erroring = vec![EvalItem {
            question: "divides by zero".into(),
            gold_sql: "SELECT 1 / 0".into(),
            difficulty: WorkloadDifficulty::default(),
        }];
        let report = evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &erroring, &db, 1);
        assert_eq!(report.gold_invalid, 1);
        assert_eq!(report.invalid, 0);
        assert_eq!(report.total, 1);
    }

    #[test]
    fn gold_defects_do_not_deflate_accuracy() {
        let db = campus_db();
        // A perfectly-graded valid item mixed with two corpus defects:
        // accuracy is judged over the gradable item only.
        let mut items = easy_items();
        items.push(EvalItem {
            question: "broken".into(),
            gold_sql: "NOT REAL SQL".into(),
            difficulty: WorkloadDifficulty::default(),
        });
        items.push(EvalItem {
            question: "errors".into(),
            gold_sql: "SELECT 1 / 0".into(),
            difficulty: WorkloadDifficulty::default(),
        });
        let with_defects = evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &items, &db, 7);
        let clean = evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &easy_items(), &db, 7);
        assert_eq!(with_defects.total, clean.total + 2);
        assert_eq!(with_defects.gold_invalid, 2);
        assert_eq!(with_defects.gradable(), clean.gradable());
        assert_eq!(with_defects.correct, clean.correct);
        assert_eq!(
            with_defects.accuracy_percent(),
            clean.accuracy_percent(),
            "corpus defects must not deflate the model's score"
        );
    }

    #[test]
    fn batch_grading_is_identical_across_thread_counts_and_to_serial() {
        let db = campus_db();
        let profile = ModelKind::Gpt4o.profile();
        let mut items = easy_items();
        items.extend(hard_items());
        items.push(EvalItem {
            question: "broken".into(),
            gold_sql: "NOT REAL SQL".into(),
            difficulty: WorkloadDifficulty::default(),
        });
        let serial =
            evaluate_execution_accuracy_opts(&profile, &items, &db, 41, ExecOptions::serial());
        for threads in [1usize, 4, 16] {
            let batched = evaluate_execution_accuracy_opts(
                &profile,
                &items,
                &db,
                41,
                ExecOptions::default().with_threads(threads),
            );
            assert_eq!(
                serial, batched,
                "batch report diverges at threads={threads}"
            );
        }
        // The legacy-interpreter strategy bypasses the compiled-plan path
        // entirely; the batch pipeline must still agree with it.
        let legacy = evaluate_execution_accuracy_opts(
            &profile,
            &items,
            &db,
            41,
            ExecOptions::new(ExecStrategy::Legacy).with_threads(4),
        );
        assert_eq!(serial, legacy);
    }

    #[test]
    fn empty_workload_reports_zero() {
        let db = campus_db();
        let report = evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &[], &db, 1);
        assert_eq!(report.accuracy_percent(), 0.0);
        assert_eq!(report.total, 0);
        assert_eq!(report.gold_invalid, 0);
    }
}
