//! Simulated text-to-SQL inference (the workload behind Figure 1).
//!
//! Given a natural-language question, the gold SQL it corresponds to, and a
//! description of the target database, a simulated model either reproduces
//! the gold query (success) or produces a corrupted variant whose failure
//! mode matches the paper's qualitative analysis: easy, unambiguous public
//! benchmark queries mostly succeed, while complex enterprise queries over
//! ambiguous schemas with domain-specific vocabulary collapse to near-zero
//! execution accuracy.

use crate::corrupt::{apply, Corruption};
use crate::model::ModelProfile;
use crate::sql2nl::stable_hash;
use bp_sql::{analyze, Query};
use bp_storage::{results_match, Catalog, Database, ExecOptions, ExecStrategy};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Characteristics of the target workload/database that drive difficulty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct WorkloadDifficulty {
    /// Schema ambiguity in `[0, 1]` (duplicated column names, overlapping
    /// tables — Table 2's low uniqueness / low type diversity).
    pub schema_ambiguity: f64,
    /// Number of domain-specific terms in the question that the model cannot
    /// resolve without enterprise knowledge.
    pub domain_terms: usize,
}

/// The outcome of one simulated text-to-SQL inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Text2SqlPrediction {
    /// The SQL the model produced.
    pub sql: String,
    /// Whether the simulation decided this inference succeeds semantically
    /// (before execution verification).
    pub intended_success: bool,
    /// The corruption applied on failure, if any.
    pub corruption: Option<Corruption>,
}

/// Simulate a model translating a question into SQL.
///
/// The gold query is used as the target the model is trying to reach; on a
/// success draw the gold SQL is reproduced (with canonical formatting), on a
/// failure draw a corruption whose severity scales with how badly the draw
/// missed is applied.
pub fn predict_sql<R: Rng>(
    profile: &ModelProfile,
    gold: &Query,
    difficulty: WorkloadDifficulty,
    catalog: &Catalog,
    rng: &mut R,
) -> Text2SqlPrediction {
    let analysis = analyze(gold);
    let success_probability = profile.text2sql_success_probability(
        analysis.difficulty_score(),
        difficulty.schema_ambiguity,
        difficulty.domain_terms,
    );
    let draw: f64 = rng.gen();
    if draw < success_probability {
        return Text2SqlPrediction {
            sql: gold.to_string(),
            intended_success: true,
            corruption: None,
        };
    }
    // How badly the draw missed determines the severity of the mistake.
    // Schema ambiguity and unresolved domain terms push failures toward the
    // severe end (wrong tables/columns): with duplicated column names and
    // opaque vocabulary the model binds to the wrong schema elements, which
    // is exactly the enterprise failure mode the paper describes.
    let miss = (draw - success_probability) / (1.0 - success_probability).max(1e-9);
    let severity =
        miss + 0.45 * difficulty.schema_ambiguity + 0.12 * difficulty.domain_terms as f64;
    let corruption = if severity > 1.25 {
        Corruption::BreakSyntax
    } else if severity > 0.62 {
        Corruption::WrongTable
    } else if severity > 0.45 {
        Corruption::WrongColumn
    } else if severity > 0.32 {
        Corruption::DropFilter
    } else if severity > 0.20 && analysis.aggregate_count > 0 {
        Corruption::WrongAggregate
    } else if severity > 0.10 && analysis.has_group_by {
        Corruption::DropGroupBy
    } else {
        Corruption::DropOrdering
    };
    Text2SqlPrediction {
        sql: apply(gold, corruption, catalog, rng),
        intended_success: false,
        corruption: Some(corruption),
    }
}

/// One (question, gold SQL) evaluation item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalItem {
    /// The natural-language question.
    pub question: String,
    /// The gold SQL text.
    pub gold_sql: String,
    /// Per-item difficulty characteristics.
    pub difficulty: WorkloadDifficulty,
}

/// Result of evaluating a model on a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionAccuracyReport {
    /// Model display name.
    pub model: String,
    /// Number of evaluated items.
    pub total: usize,
    /// Number of items whose predicted SQL executed to the gold result.
    pub correct: usize,
    /// Number of predictions that failed to parse or execute at all.
    pub invalid: usize,
}

impl ExecutionAccuracyReport {
    /// Execution accuracy in percent.
    pub fn accuracy_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64 * 100.0
        }
    }
}

/// Evaluate a model's execution accuracy over a workload against a database
/// with the default execution strategy (the planned engine).
///
/// Every prediction is executed on `db` and compared to the gold result with
/// the Spider/Bird execution-accuracy convention (see
/// [`bp_storage::results_match`]). The whole run is deterministic for a
/// given `seed`.
pub fn evaluate_execution_accuracy(
    profile: &ModelProfile,
    items: &[EvalItem],
    db: &Database,
    seed: u64,
) -> ExecutionAccuracyReport {
    evaluate_execution_accuracy_opts(profile, items, db, seed, ExecOptions::default())
}

/// [`evaluate_execution_accuracy`] with an explicit engine choice at full
/// parallelism — grading million-entry logs wants [`ExecStrategy::Planned`]
/// (the columnar batch engine); differential checks of the grader itself can
/// pin [`ExecStrategy::RowPlanned`] (the row-at-a-time representation
/// oracle) or [`ExecStrategy::Legacy`] (the interpreter oracle).
pub fn evaluate_execution_accuracy_with(
    profile: &ModelProfile,
    items: &[EvalItem],
    db: &Database,
    seed: u64,
    strategy: ExecStrategy,
) -> ExecutionAccuracyReport {
    evaluate_execution_accuracy_opts(profile, items, db, seed, ExecOptions::new(strategy))
}

/// [`evaluate_execution_accuracy`] with full [`ExecOptions`] control,
/// including the planned engine's worker-thread budget. Grading results are
/// identical at every thread count (the parallel executor is deterministic).
pub fn evaluate_execution_accuracy_opts(
    profile: &ModelProfile,
    items: &[EvalItem],
    db: &Database,
    seed: u64,
    options: ExecOptions,
) -> ExecutionAccuracyReport {
    let mut correct = 0;
    let mut invalid = 0;
    for (index, item) in items.iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ stable_hash(&item.gold_sql) ^ (index as u64).wrapping_mul(0x9e3779b97f4a7c15),
        );
        let gold_query = match bp_sql::parse_query(&item.gold_sql) {
            Ok(q) => q,
            Err(_) => {
                invalid += 1;
                continue;
            }
        };
        let prediction = predict_sql(
            profile,
            &gold_query,
            item.difficulty,
            db.catalog(),
            &mut rng,
        );
        let predicted_result = match db.execute_sql_opts(&prediction.sql, options) {
            Ok(r) => r,
            Err(_) => {
                invalid += 1;
                continue;
            }
        };
        let gold_result = match db.execute_opts(&gold_query, options) {
            Ok(r) => r,
            Err(_) => continue,
        };
        if results_match(&gold_result, &predicted_result) {
            correct += 1;
        }
    }
    ExecutionAccuracyReport {
        model: profile.kind.name().to_string(),
        total: items.len(),
        correct,
        invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use bp_sql::parse_query;

    fn campus_db() -> Database {
        let mut db = Database::new("campus");
        db.ingest_ddl(
            "CREATE TABLE students (id INT PRIMARY KEY, name VARCHAR(40), gpa NUMBER, dept VARCHAR(20));
             CREATE TABLE enrollments (student_id INT, term VARCHAR(20), course VARCHAR(20));",
        )
        .unwrap();
        db.insert_into(
            "students",
            (0..40)
                .map(|i| {
                    vec![
                        i.into(),
                        format!("student_{i}").into(),
                        (2.0 + (i % 20) as f64 / 10.0).into(),
                        if i % 2 == 0 {
                            "EECS".into()
                        } else {
                            "MATH".into()
                        },
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        db.insert_into(
            "enrollments",
            (0..40)
                .map(|i| {
                    vec![
                        i.into(),
                        if i % 4 == 0 {
                            "J-term".into()
                        } else {
                            "Fall".into()
                        },
                        format!("6.{i:03}").into(),
                    ]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        db
    }

    fn easy_items() -> Vec<EvalItem> {
        vec![
            EvalItem {
                question: "How many students are there?".into(),
                gold_sql: "SELECT COUNT(*) FROM students".into(),
                difficulty: WorkloadDifficulty::default(),
            },
            EvalItem {
                question: "List the names of EECS students".into(),
                gold_sql: "SELECT name FROM students WHERE dept = 'EECS'".into(),
                difficulty: WorkloadDifficulty::default(),
            },
            EvalItem {
                question: "Average gpa per department".into(),
                gold_sql: "SELECT dept, AVG(gpa) FROM students GROUP BY dept".into(),
                difficulty: WorkloadDifficulty::default(),
            },
        ]
    }

    fn hard_items() -> Vec<EvalItem> {
        vec![
            EvalItem {
                question: "J-term enrollment counts per department for high-GPA students".into(),
                gold_sql: "SELECT s.dept, COUNT(DISTINCT e.student_id) FROM students s JOIN enrollments e ON s.id = e.student_id WHERE e.term = 'J-term' AND s.gpa > (SELECT AVG(gpa) FROM students) GROUP BY s.dept ORDER BY 2 DESC"
                    .into(),
                difficulty: WorkloadDifficulty {
                    schema_ambiguity: 0.6,
                    domain_terms: 3,
                },
            };
            5
        ]
    }

    #[test]
    fn prediction_is_gold_or_corrupted() {
        let db = campus_db();
        let gold = parse_query("SELECT COUNT(*) FROM students").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let prediction = predict_sql(
            &ModelKind::Gpt4o.profile(),
            &gold,
            WorkloadDifficulty::default(),
            db.catalog(),
            &mut rng,
        );
        if prediction.intended_success {
            assert_eq!(prediction.sql, gold.to_string());
            assert!(prediction.corruption.is_none());
        } else {
            assert!(prediction.corruption.is_some());
        }
    }

    #[test]
    fn strong_model_beats_weak_model_on_easy_workload() {
        let db = campus_db();
        let strong =
            evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &easy_items(), &db, 7);
        let weak =
            evaluate_execution_accuracy(&ModelKind::Llama8B.profile(), &easy_items(), &db, 7);
        assert!(strong.accuracy_percent() >= weak.accuracy_percent());
        assert_eq!(strong.total, 3);
    }

    #[test]
    fn enterprise_difficulty_collapses_accuracy() {
        let db = campus_db();
        let profile = ModelKind::Gpt4o.profile();
        // Run the same items many times via different seeds to smooth noise.
        let mut easy_correct = 0usize;
        let mut hard_correct = 0usize;
        let mut easy_total = 0usize;
        let mut hard_total = 0usize;
        for seed in 0..10 {
            let easy = evaluate_execution_accuracy(&profile, &easy_items(), &db, seed);
            let hard = evaluate_execution_accuracy(&profile, &hard_items(), &db, seed);
            easy_correct += easy.correct;
            easy_total += easy.total;
            hard_correct += hard.correct;
            hard_total += hard.total;
        }
        let easy_acc = easy_correct as f64 / easy_total as f64;
        let hard_acc = hard_correct as f64 / hard_total as f64;
        assert!(easy_acc > 0.6, "easy accuracy too low: {easy_acc}");
        assert!(hard_acc < 0.2, "hard accuracy too high: {hard_acc}");
    }

    #[test]
    fn grading_agrees_across_execution_engines() {
        let db = campus_db();
        let profile = ModelKind::Gpt4o.profile();
        for items in [easy_items(), hard_items()] {
            let planned =
                evaluate_execution_accuracy_with(&profile, &items, &db, 11, ExecStrategy::Planned);
            let legacy =
                evaluate_execution_accuracy_with(&profile, &items, &db, 11, ExecStrategy::Legacy);
            assert_eq!(planned, legacy);
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let db = campus_db();
        let profile = ModelKind::DeepSeek.profile();
        let a = evaluate_execution_accuracy(&profile, &easy_items(), &db, 123);
        let b = evaluate_execution_accuracy(&profile, &easy_items(), &db, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn unparseable_gold_counts_as_invalid() {
        let db = campus_db();
        let items = vec![EvalItem {
            question: "broken".into(),
            gold_sql: "NOT REAL SQL".into(),
            difficulty: WorkloadDifficulty::default(),
        }];
        let report = evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &items, &db, 1);
        assert_eq!(report.invalid, 1);
        assert_eq!(report.correct, 0);
        assert_eq!(report.accuracy_percent(), 0.0);
    }

    #[test]
    fn empty_workload_reports_zero() {
        let db = campus_db();
        let report = evaluate_execution_accuracy(&ModelKind::Gpt4o.profile(), &[], &db, 1);
        assert_eq!(report.accuracy_percent(), 0.0);
        assert_eq!(report.total, 0);
    }
}
