//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! `syn`/`quote` are not available offline, so the item is parsed directly
//! from the `proc_macro` token tree and the impls are emitted as strings.
//! Supported shapes — all that the workspace uses — are non-generic structs
//! (named, tuple, unit) and enums whose variants are unit, tuple, or struct
//! shaped. Generic parameters (other than none) are rejected loudly rather
//! than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracketed group that follows.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut tokens, "struct name");
                reject_generics(&mut tokens, &name);
                return match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                        name,
                        kind: ItemKind::NamedStruct(parse_named_fields(g.stream())),
                    },
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                        name,
                        kind: ItemKind::TupleStruct(count_tuple_fields(g.stream())),
                    },
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                        name,
                        kind: ItemKind::UnitStruct,
                    },
                    other => {
                        panic!("serde_derive: unexpected token after struct {name}: {other:?}")
                    }
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut tokens, "enum name");
                reject_generics(&mut tokens, &name);
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item {
                            name,
                            kind: ItemKind::Enum(parse_variants(g.stream())),
                        };
                    }
                    other => panic!("serde_derive: unexpected token after enum {name}: {other:?}"),
                }
            }
            Some(other) => panic!("serde_derive: unsupported item token: {other}"),
            None => panic!("serde_derive: empty derive input"),
        }
    }
}

fn expect_ident(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected {what}, got {other:?}"),
    }
}

fn reject_generics(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub does not support generic type `{name}`");
        }
    }
}

/// Parse `name: Type, ...` field lists, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field {name}, got {other:?}"),
        }
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(name);
    }
    fields
}

/// Count fields of a tuple struct/variant: top-level comma-separated segments.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if segment_has_tokens {
                        count += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(names)
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn named_fields_to_value(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => named_fields_to_value(fields, "self."),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::__private::variant_map(\
                             \"{vname}\", ::serde::Serialize::to_value(__f0)),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::__private::variant_map(\
                                 \"{vname}\", ::serde::Value::Seq(::std::vec![{}])),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let map = named_fields_to_value(fields, "");
                            format!(
                                "{name}::{vname} {{ {} }} => \
                                 ::serde::__private::variant_map(\"{vname}\", {map}),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn named_fields_from_map(type_path: &str, fields: &[String], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__private::field({map_expr}, \"{f}\")?"))
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let init = named_fields_from_map(name, fields, "__map");
            format!(
                "let __map = __value.as_map().ok_or_else(|| \
                 ::serde::Error::expected(\"map\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({init})"
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __value.as_seq().ok_or_else(|| \
                 ::serde::Error::expected(\"sequence\", \"{name}\"))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        ItemKind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __seq = __payload.as_seq().ok_or_else(|| \
                                 ::serde::Error::expected(\"sequence\", \"{name}::{vname}\"))?;\n\
                                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\
                                 \"wrong tuple length for {name}::{vname}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let init =
                                named_fields_from_map(&format!("{name}::{vname}"), fields, "__map");
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __map = __payload.as_map().ok_or_else(|| \
                                 ::serde::Error::expected(\"map\", \"{name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({init})\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 let _ = __payload;\n\
                 match __tag.as_str() {{\n\
                 {tagged}\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"enum representation\", \"{name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
