//! Generator for the regex subset proptest string strategies use.
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_ ]`
//! (ranges and singletons, no negation), groups `( ... )`, and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones are capped
//! at 8 repetitions for generation). This covers every pattern in the
//! workspace's property tests.

use std::iter::Peekable;
use std::str::Chars;

use crate::test_runner::TestRng;

/// Generate a string matching `pattern`.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let pieces = parse_sequence(&mut chars, None, pattern);
    let mut out = String::new();
    for piece in &pieces {
        generate(piece, rng, &mut out);
    }
    out
}

/// Cap for `*` and `+` when generating.
const UNBOUNDED_CAP: usize = 8;

enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<Piece>),
}

struct Piece {
    node: Node,
    min: usize,
    max: usize,
}

fn parse_sequence(
    chars: &mut Peekable<Chars<'_>>,
    terminator: Option<char>,
    pattern: &str,
) -> Vec<Piece> {
    let mut pieces = Vec::new();
    loop {
        let c = match chars.peek().copied() {
            None => {
                assert!(
                    terminator.is_none(),
                    "unterminated group in pattern `{pattern}`"
                );
                break;
            }
            Some(c) if Some(c) == terminator => {
                chars.next();
                break;
            }
            Some(c) => c,
        };
        chars.next();
        let node = match c {
            '[' => Node::Class(parse_class(chars, pattern)),
            '(' => Node::Group(parse_sequence(chars, Some(')'), pattern)),
            '\\' => Node::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`")),
            ),
            other => Node::Literal(other),
        };
        let (min, max) = parse_quantifier(chars, pattern);
        pieces.push(Piece { node, min, max });
    }
    pieces
}

fn parse_class(chars: &mut Peekable<Chars<'_>>, pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
        if c == ']' {
            assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
            return ranges;
        }
        let start = if c == '\\' {
            chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`"))
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            // Lookahead: `-` is a range only when not immediately before `]`.
            let mut ahead = chars.clone();
            ahead.next();
            if ahead.peek() != Some(&']') {
                chars.next();
                let end = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated range in pattern `{pattern}`"));
                assert!(start <= end, "inverted range in pattern `{pattern}`");
                ranges.push((start, end));
                continue;
            }
        }
        ranges.push((start, start));
    }
}

fn parse_quantifier(chars: &mut Peekable<Chars<'_>>, pattern: &str) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (min, max) = match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().unwrap_or_else(|_| {
                                panic!("bad quantifier `{{{spec}}}` in `{pattern}`")
                            }),
                            hi.parse().unwrap_or_else(|_| {
                                panic!("bad quantifier `{{{spec}}}` in `{pattern}`")
                            }),
                        ),
                        None => {
                            let n = spec.parse().unwrap_or_else(|_| {
                                panic!("bad quantifier `{{{spec}}}` in `{pattern}`")
                            });
                            (n, n)
                        }
                    };
                    assert!(min <= max, "inverted quantifier in pattern `{pattern}`");
                    return (min, max);
                }
                spec.push(c);
            }
            panic!("unterminated quantifier in pattern `{pattern}`");
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

fn generate(piece: &Piece, rng: &mut TestRng, out: &mut String) {
    let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
    for _ in 0..count {
        match &piece.node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                    .sum();
                let mut index = rng.below(total);
                for (lo, hi) in ranges {
                    let size = *hi as u64 - *lo as u64 + 1;
                    if index < size {
                        out.push(
                            char::from_u32(*lo as u32 + index as u32)
                                .expect("class range produced invalid char"),
                        );
                        break;
                    }
                    index -= size;
                }
            }
            Node::Group(pieces) => {
                for inner in pieces {
                    generate(inner, rng, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn check(pattern: &str, predicate: impl Fn(&str) -> bool) {
        let mut rng = TestRng::from_name(pattern);
        for _ in 0..200 {
            let s = sample_regex(pattern, &mut rng);
            assert!(predicate(&s), "pattern `{pattern}` produced `{s}`");
        }
    }

    #[test]
    fn classes_and_quantifiers() {
        check("[a-z]{3}", |s| {
            s.len() == 3 && s.chars().all(|c| c.is_ascii_lowercase())
        });
        check("[a-z ]{1,40}", |s| {
            (1..=40).contains(&s.len()) && s.chars().all(|c| c.is_ascii_lowercase() || c == ' ')
        });
        check("[ -~]{0,20}", |s| {
            s.len() <= 20 && s.chars().all(|c| (' '..='~').contains(&c))
        });
    }

    #[test]
    fn groups_and_literals() {
        check("[a-z]{2,10}( [a-z]{2,10}){1,8}", |s| {
            let words: Vec<&str> = s.split(' ').collect();
            (2..=9).contains(&words.len())
                && words.iter().all(|w| {
                    (2..=10).contains(&w.len()) && w.chars().all(|c| c.is_ascii_lowercase())
                })
        });
        check("abc", |s| s == "abc");
        check("[a-zA-Z][a-zA-Z0-9_ ]{0,80}", |s| {
            !s.is_empty() && s.chars().next().unwrap().is_ascii_alphabetic()
        });
    }
}
