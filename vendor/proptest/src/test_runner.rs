//! Configuration and the deterministic RNG behind sampled cases.

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 32,
            max_shrink_iters: 0,
        }
    }
}

/// SplitMix64 generator seeded from the property name: deterministic across
/// runs so a failing case always reproduces.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a property name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
