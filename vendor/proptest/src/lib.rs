//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property as a deterministic loop of randomly sampled cases
//! (seeded from the test name, so failures reproduce run-to-run). Supports
//! the strategy surface the workspace uses: numeric ranges, `Just`,
//! `prop_oneof!`, `proptest::collection::vec`, and regex-subset string
//! strategies like `"[a-z ]{1,40}"`. Shrinking is intentionally not
//! implemented — a failing case panics with its sampled inputs via the
//! standard assert messages.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

pub mod prelude {
    //! Everything a `proptest!` test body needs in scope.

    pub use crate::strategy::{Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Build a [`strategy::Union`] choosing uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(__options.push(::std::boxed::Box::new($strategy));)+
        $crate::strategy::Union::new(__options)
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }` runs
/// `config.cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&$strategy, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}
