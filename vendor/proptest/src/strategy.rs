//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::string::sample_regex;
use crate::test_runner::TestRng;

/// A recipe for sampling values of `Self::Value`.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// String literals are regex-subset strategies, as in real proptest.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].sample(rng)
    }
}

/// Vectors with sampled length and elements; built by `collection::vec`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    /// Build from an element strategy and a length range.
    pub fn new(element: S, size: Range<usize>) -> Self {
        assert!(size.start < size.end, "cannot sample empty size range");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
