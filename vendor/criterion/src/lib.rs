//! Offline stand-in for the `criterion` crate.
//!
//! Implements the entry points the workspace's `pipeline` bench uses —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a straightforward wall-clock
//! measurement loop: warm up, calibrate an iteration count per sample, take
//! `sample_size` samples, report min/median/mean per iteration. No
//! statistical analysis, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; only affects how many
/// inputs are pre-built per measured batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: batch many per measurement.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs: one input per measurement.
    LargeInput,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::MediumInput => 8,
            BatchSize::LargeInput => 1,
        }
    }
}

/// The benchmark driver handed to each bench function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "sample_size must be at least 2");
        self.sample_size = samples;
        self
    }

    /// Set the time budget shared by the timed samples.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.measurement_time = budget;
        self
    }

    /// Set how long to warm up before timing.
    pub fn warm_up_time(mut self, budget: Duration) -> Self {
        self.warm_up_time = budget;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        body(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure a routine by running it in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, measuring a rough
        // per-iteration cost as we go.
        let warm_up_start = Instant::now();
        let mut warm_up_iters = 0u64;
        while warm_up_start.elapsed() < self.warm_up_time {
            std_black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters.max(1) as f64;

        // Calibrate: split the measurement budget into `sample_size` samples.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }

    /// Measure a routine that consumes a fresh input per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch_len = size.batch_len();

        // Warm-up with one batch.
        let mut batch: Vec<I> = (0..batch_len).map(|_| setup()).collect();
        let warm_up_start = Instant::now();
        for input in batch.drain(..) {
            std_black_box(routine(input));
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / batch_len as f64;

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batches_per_sample =
            ((per_sample / (per_iter.max(1e-9) * batch_len as f64)) as u64).clamp(1, 10_000);

        for _ in 0..self.sample_size {
            let mut total_ns = 0f64;
            let mut measured = 0u64;
            for _ in 0..batches_per_sample {
                let batch: Vec<I> = (0..batch_len).map(|_| setup()).collect();
                let start = Instant::now();
                for input in batch {
                    std_black_box(routine(input));
                }
                total_ns += start.elapsed().as_nanos() as f64;
                measured += batch_len as u64;
            }
            self.samples_ns.push(total_ns / measured as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<55} (no samples collected)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("NaN timing sample"));
        let min = self.samples_ns[0];
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let mean: f64 = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{name:<55} min {:>12} median {:>12} mean {:>12}",
            format_ns(min),
            format_ns(median),
            format_ns(mean)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declare a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut criterion = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        criterion.bench_function("smoke/iter", |b| b.iter(|| 2u64 + 2));
        criterion.bench_function("smoke/iter_batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
