//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API the workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, `gen`, `gen_range` over
//! half-open and inclusive integer/float ranges, `gen_bool`, and
//! [`seq::SliceRandom`] (`shuffle` / `choose`). Distribution quality targets
//! "good enough for deterministic simulation": uniform ints use Lemire-style
//! widening reduction, floats use the 53-bit mantissa trick.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Produce the next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Produce the next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator, reproducible from a single `u64`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Sample a value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that knows how to sample a uniform value of `T` from itself.
pub trait SampleRange<T> {
    /// Sample a uniform value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Uniform value in `[0, span)` via 128-bit widening multiply (Lemire).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers: shuffling and random element choice.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Choose a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// The recommended default generator: a small, fast xoshiro256** core.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A self-contained xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut seeder = crate::SplitMix64(state);
            SmallRng {
                state: [
                    seeder.next_word(),
                    seeder.next_word(),
                    seeder.next_word(),
                    seeder.next_word(),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

/// SplitMix64, used to expand `u64` seeds into full generator state.
#[doc(hidden)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Produce the next word of the seed-expansion stream.
    pub fn next_word(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut items: Vec<u32> = (0..10).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
