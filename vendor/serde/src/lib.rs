//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real serde cannot be
//! fetched. This stub keeps the public surface the workspace actually uses —
//! `#[derive(Serialize, Deserialize)]` plus round-tripping through
//! `serde_json` — on top of a much simpler data model: serialization goes
//! through an owned [`Value`] tree instead of serde's zero-copy
//! visitor/`Serializer` architecture.
//!
//! Representation choices mirror serde's defaults so derived output looks the
//! same on the wire: structs are JSON objects in field-declaration order,
//! newtype structs are transparent, enums are externally tagged (`"Unit"`,
//! `{"Newtype": ...}`, `{"Tuple": [...]}`, `{"Struct": {...}}`), and missing
//! `Option` fields deserialize to `None`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate tree every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value does not fit `i64` or the
    /// source type is unsigned).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow this value as a map, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow this value as a sequence, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow this value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when deserialization fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// "expected X while deserializing Y" error.
    pub fn expected(what: &str, while_deserializing: &str) -> Self {
        Error(format!(
            "expected {what} while deserializing {while_deserializing}"
        ))
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(variant: &str, enum_name: &str) -> Self {
        Error(format!("unknown variant `{variant}` for enum {enum_name}"))
    }

    /// Missing struct field error.
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the intermediate value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called for struct fields absent from the serialized map. `Option`
    /// overrides this to produce `None`; everything else errors.
    fn from_missing(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    // 2^63 bounds: `as` would silently saturate outside them.
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f >= -9_223_372_036_854_775_808.0
                            && *f < 9_223_372_036_854_775_808.0 =>
                    {
                        *f as i64
                    }
                    other => return Err(Error::expected("integer", other.type_name())),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    // 2^64 upper bound: `as` would silently saturate above it.
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f >= 0.0
                            && *f < 18_446_744_073_709_551_616.0 =>
                    {
                        *f as u64
                    }
                    other => return Err(Error::expected("integer", other.type_name())),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::expected("number", other.type_name())),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other.type_name())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other.type_name())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("single-character string", value.type_name()))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// `Arc` is transparent on the wire, like `Box`: shared ownership is a
// runtime detail (copy-on-write storage snapshots), not part of the data
// model. Deserialization always builds a fresh, unshared allocation.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value.type_name()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| Error::expected("sequence", value.type_name()))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a sequence of length {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value.type_name()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value.type_name()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Map keys must render to/from strings because the wire format is JSON.
pub trait MapKey: Sized {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom("invalid numeric map key"))
            }
        }
    )*};
}
impl_map_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", value.type_name()))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, matching what callers relying on
        // stable JSON snapshots expect.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", value.type_name()))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

/// Helpers used by `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Wrap an externally-tagged enum variant payload.
    pub fn variant_map(variant: &str, payload: Value) -> Value {
        Value::Map(vec![(variant.to_string(), payload)])
    }

    /// Deserialize a struct field from a map, falling back to
    /// [`Deserialize::from_missing`] when the key is absent.
    pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => T::from_missing(name),
        }
    }
}
