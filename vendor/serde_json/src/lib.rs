//! Offline stand-in for `serde_json`.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — over the vendored `serde` stub's
//! [`Value`] data model. Output format matches serde_json's defaults:
//! compact form has no whitespace, pretty form indents with two spaces, and
//! floats print in their shortest round-trippable form.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Error type for serialization and deserialization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` prints the shortest representation that round-trips, and
        // always includes a decimal point or exponent for non-integral style
        // ("1.0", not "1"), matching serde_json's behaviour closely enough.
        out.push_str(&format!("{f:?}"));
    } else {
        // serde_json writes null for non-finite floats.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn consume_keyword(&mut self, keyword: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                self.consume_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.consume_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.consume_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair: a low-surrogate \uXXXX must follow.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error::new("unpaired high surrogate"));
                            }
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(byte) => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let width = utf8_width(byte);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string("a \"quoted\" str").unwrap(),
            "\"a \\\"quoted\\\" str\""
        );
        let n: f64 = from_str("1.5").unwrap();
        assert_eq!(n, 1.5);
        let s: String = from_str("\"hi\\nthere\"").unwrap();
        assert_eq!(s, "hi\nthere");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let opt: Option<String> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        let back: Option<String> = from_str("null").unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("not json").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn rejects_bad_surrogate_escapes() {
        // High surrogate followed by a non-low-surrogate escape must be a
        // parse error, not a panic or a mangled char.
        assert!(from_str::<String>("\"\\ud801\\u0041\"").is_err());
        // Lone low surrogate is not a valid scalar value.
        assert!(from_str::<String>("\"\\udc01\"").is_err());
        // A well-formed pair decodes.
        let s: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "😀");
    }

    #[test]
    fn rejects_out_of_range_integers() {
        // 2^64 and huge exponent floats fall outside u64/i64; they must
        // error rather than silently saturate.
        assert!(from_str::<u64>("18446744073709551616").is_err());
        assert!(from_str::<i64>("1e19").is_err());
        assert!(from_str::<i64>("-1e19").is_err());
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }
}
