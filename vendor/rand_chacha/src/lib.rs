//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha block cipher core running 8 rounds,
//! seeded via SplitMix64 expansion of a `u64` (the only construction the
//! workspace uses). Stream values are deterministic across runs and
//! platforms, which is all the reproduction depends on — they are *not*
//! bit-compatible with the real rand_chacha crate.

use rand::{RngCore, SeedableRng, SplitMix64};

const ROUNDS: usize = 8;
const BLOCK_WORDS: usize = 16;

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state fed into each block.
    state: [u32; BLOCK_WORDS],
    /// Buffered output of the current block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread index into `buffer`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut seeder = SplitMix64(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = seeder.next_word();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Words 12..14 are the 64-bit block counter, 14..16 the nonce (zero).
        ChaCha8Rng {
            state,
            buffer: [0u32; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let low = self.next_word() as u64;
        let high = self.next_word() as u64;
        (high << 32) | low
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl ChaCha8Rng {
    fn next_word(&mut self) -> u32 {
        if self.index == BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // Advance the 64-bit block counter.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let n = rng.gen_range(0..10usize);
            assert!(n < 10);
        }
    }
}
