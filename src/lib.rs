//! # benchpress-suite — umbrella crate for the BenchPress reproduction
//!
//! Re-exports the workspace crates under one roof so the examples and the
//! cross-crate integration tests have a single dependency, and so downstream
//! users can `use benchpress_suite as bp` to get the whole system.
//!
//! * [`sql`] — SQL parsing, analysis, CTE decomposition/recomposition.
//! * [`storage`] — in-memory relational engine and data profiler.
//! * [`embed`] — deterministic embeddings and vector retrieval.
//! * [`llm`] — simulated LLM backend (SQL→NL, NL→SQL, text-to-SQL).
//! * [`datasets`] — synthetic Spider/Bird/Fiben/Beaver-like corpora.
//! * [`metrics`] — BLEU/ROUGE, coverage accuracy, backtranslation rubric.
//! * [`core`] — the BenchPress human-in-the-loop annotation workflow.
//! * [`study`] — the simulated between-subjects user study.

#![warn(missing_docs)]

pub use bp_core as core;
pub use bp_datasets as datasets;
pub use bp_embed as embed;
pub use bp_llm as llm;
pub use bp_metrics as metrics;
pub use bp_sql as sql;
pub use bp_storage as storage;
pub use bp_study as study;

/// The version of the reproduction suite.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
