//! Benchmark curation end-to-end: generate an enterprise-like corpus, curate
//! a text-to-SQL benchmark from its SQL log with BenchPress, export it, and
//! then use the curated benchmark to evaluate text-to-SQL models (the
//! workflow the paper positions BenchPress for).
//!
//! Run with: `cargo run --example benchmark_curation`

use benchpress_suite::core::{
    execution_accuracy, export_records, review_metrics, FeedbackAction, Project, TaskConfig,
};
use benchpress_suite::datasets::{BenchmarkKind, GeneratedBenchmark};
use benchpress_suite::llm::ModelKind;

fn main() {
    // An enterprise SQL log (Beaver-like): ambiguous schema, domain terms.
    let corpus = GeneratedBenchmark::generate(BenchmarkKind::Beaver, 12, 7);
    println!(
        "Generated enterprise corpus: {} tables, {} queries in the log.",
        corpus.database.table_count(),
        corpus.log.len()
    );

    // Curate: annotate every log entry with the BenchPress loop, accepting
    // the first candidate (a real deployment would review each one).
    let mut project = Project::new("enterprise-benchmark", TaskConfig::default().with_seed(11));
    project.ingest_benchmark(&corpus);
    for query_id in 0..project.log().len() {
        project.annotate(query_id).expect("annotation runs");
        project
            .apply_feedback(query_id, FeedbackAction::SelectCandidate(0))
            .expect("feedback applies");
        project.finalize(query_id).expect("finalizes");
    }
    println!("Curated {} annotations.", project.finalized_count());

    // Review metrics against the gold questions the generator produced.
    let metrics = review_metrics(&project);
    println!(
        "Review metrics vs gold: exact match {:.0}%, BLEU {:.2}, ROUGE-L {:.2} over {} pairs.",
        metrics.exact_match_rate * 100.0,
        metrics.mean_bleu,
        metrics.mean_rouge_l,
        metrics.compared
    );

    // Export: the benchmark-ready records.
    let records = export_records(&project);
    println!(
        "Exported {} records; first entry:\n  question: {}\n  query:    {}",
        records.len(),
        records[0].question,
        records[0].query
    );

    // Use the curated benchmark to evaluate text-to-SQL models on *your* workload.
    println!("\nExecution accuracy of text-to-SQL models on the curated workload:");
    for model in [ModelKind::Gpt4o, ModelKind::Llama70B, ModelKind::Llama8B] {
        let report = execution_accuracy(&project, model, corpus.profile.schema_ambiguity, 3);
        println!(
            "  {:<18} {:>5.1}%  ({} / {} correct, {} invalid)",
            model.name(),
            report.accuracy_percent(),
            report.correct,
            report.total,
            report.invalid
        );
    }
}
