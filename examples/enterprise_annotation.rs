//! Enterprise annotation walkthrough: the paper's Figure 3 scenario.
//!
//! A nested warehouse query over Moira mailing lists is decomposed into CTE
//! units, each unit gets four candidates, the annotator injects domain
//! knowledge ("Moira is the mailing system"), regenerates, and the final
//! recomposed description is checked with the component-coverage metric and
//! the backtranslation rubric.
//!
//! Run with: `cargo run --example enterprise_annotation`

use benchpress_suite::core::{FeedbackAction, Project, TaskConfig};
use benchpress_suite::datasets::DomainLexicon;
use benchpress_suite::llm::ModelKind;
use benchpress_suite::metrics::{coverage_sql, grade_sql};

fn main() {
    let mut project = Project::new("mit-warehouse", TaskConfig::default());
    project.set_lexicon(DomainLexicon::enterprise());
    project
        .ingest_schema(
            "CREATE TABLE MOIRA_LIST (MOIRA_LIST_KEY INT PRIMARY KEY, MOIRA_LIST_NAME VARCHAR(80), DEPARTMENT_CODE VARCHAR(20));
             CREATE TABLE MOIRA_MEMBER (MOIRA_LIST_KEY INT REFERENCES MOIRA_LIST(MOIRA_LIST_KEY), MIT_ID INT);",
        )
        .expect("schema ingests");

    // The Figure 3 query: for Moira lists starting with 'B' in EECS, find the
    // list with the most distinct members.
    let sql = "SELECT COUNT(DISTINCT dl.MOIRA_LIST_NAME), \
               (SELECT MOIRA_LIST_NAME FROM (SELECT l.MOIRA_LIST_NAME, COUNT(DISTINCT m.MIT_ID) AS member_count \
                 FROM MOIRA_LIST l JOIN MOIRA_MEMBER m ON l.MOIRA_LIST_KEY = m.MOIRA_LIST_KEY \
                 WHERE l.MOIRA_LIST_NAME LIKE 'B%' AND l.DEPARTMENT_CODE = 'EECS' \
                 GROUP BY l.MOIRA_LIST_NAME) AS x ORDER BY member_count DESC LIMIT 1) \
               FROM (SELECT DISTINCT MOIRA_LIST_NAME FROM MOIRA_LIST WHERE MOIRA_LIST_NAME LIKE 'B%') AS dl";
    project.ingest_log(&format!("{sql};"));

    // First pass: cold start, no domain knowledge yet.
    let draft = project.annotate(0).expect("annotation runs");
    println!("Decomposed: {}", draft.was_decomposed);
    println!("Units ({}):", draft.units.len());
    for unit in &draft.units {
        println!("  - {} ({} chars of SQL)", unit.unit_name, unit.sql.len());
    }
    println!("\nFirst-pass candidate [0]:\n  {}", draft.candidates[0]);

    // Feedback loop: the annotator injects enterprise knowledge and a
    // priority, then regenerates (paper step 6).
    project
        .apply_feedback(
            0,
            FeedbackAction::AddKnowledge {
                topic: "Moira".into(),
                note: "Moira is MIT's mailing list system for newsletters.".into(),
            },
        )
        .unwrap();
    project
        .apply_feedback(
            0,
            FeedbackAction::AddPriority("describe the filtering logic".into()),
        )
        .unwrap();
    let improved = project.annotate(0).expect("regeneration runs");
    println!("\nRegenerated candidate [0]:\n  {}", improved.candidates[0]);

    // The annotator accepts the best regenerated candidate (after a light edit).
    let chosen = improved.candidates[0].clone();
    project
        .apply_feedback(0, FeedbackAction::Edit(chosen))
        .unwrap();
    let record = project.finalize(0).expect("finalizes");

    // Quality checks: component coverage and backtranslation clarity.
    let report = coverage_sql(sql, &record.description).expect("parses");
    println!(
        "\nComponent coverage of the accepted description: {:.0}% ({} of {} components)",
        report.score() * 100.0,
        report.components.iter().filter(|c| c.covered).count(),
        report.components.len()
    );
    let translator = benchpress_suite::llm::Backtranslator::new(
        project.database().catalog(),
        ModelKind::Gpt4o.profile(),
    );
    let regenerated = translator.backtranslate(&record.description);
    let outcome = grade_sql(sql, &regenerated, None).expect("grades");
    println!("Backtranslated SQL: {regenerated}");
    println!("Clarity level: {:?} ({})", outcome.level, outcome.reason);
}
