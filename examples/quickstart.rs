//! Quickstart: set up a project, ingest a schema and a small SQL log,
//! run the annotation loop on one query, give feedback, finalize, and export.
//!
//! Run with: `cargo run --example quickstart`

use benchpress_suite::core::{export_json, FeedbackAction, Project, TaskConfig};

fn main() {
    // 1. Project setup + task configuration (SQL-to-NL, GPT-4o-profile model).
    let mut project = Project::new("quickstart", TaskConfig::default());

    // 2. Dataset ingestion: a schema file and a SQL log, exactly what a
    //    BenchPress user uploads.
    project
        .ingest_schema(
            "CREATE TABLE students (id INT PRIMARY KEY, name VARCHAR(40), gpa NUMBER, dept VARCHAR(20));
             CREATE TABLE enrollments (student_id INT REFERENCES students(id), term VARCHAR(20), course VARCHAR(20));",
        )
        .expect("schema ingests");
    let (added, skipped) = project.ingest_log(
        "SELECT name, gpa FROM students WHERE dept = 'EECS' ORDER BY gpa DESC;
         SELECT dept, COUNT(*) FROM students GROUP BY dept;
         SELECT name FROM students WHERE id IN (SELECT student_id FROM enrollments WHERE term = 'J-term');",
    );
    println!("Ingested {added} queries ({skipped} skipped).");

    // 3. The annotation loop: decomposition, retrieval, candidate generation.
    let draft = project.annotate(0).expect("annotation loop runs");
    println!("\nSQL: {}", draft.sql);
    println!("Candidates:");
    for (index, candidate) in draft.candidates.iter().enumerate() {
        println!("  [{index}] {candidate}");
    }

    // 4. Feedback: accept the first candidate and finalize.
    project
        .apply_feedback(0, FeedbackAction::SelectCandidate(0))
        .expect("feedback applies");
    let record = project.finalize(0).expect("finalizes");
    println!("\nAccepted annotation: {}", record.description);

    // 5. The knowledge base grew, so the next annotation retrieves it.
    let next = project.annotate(1).expect("second annotation");
    println!(
        "\nSecond query used {} retrieved example(s) as context.",
        next.units[0].examples_used
    );

    // 6. Export in benchmark-ready JSON.
    let json = export_json(&project).expect("export succeeds");
    println!("\nExported benchmark JSON:\n{json}");
}
