//! Run a reduced version of the paper's user study and print the accuracy
//! (Table 3), latency (Table 4) and backtranslation-clarity (Figure 4)
//! summaries. Use `cargo run -p bp-bench --bin user_study_report` for the
//! full 18-participant configuration.
//!
//! Run with: `cargo run --example user_study`

use benchpress_suite::llm::ModelKind;
use benchpress_suite::study::{run_study, Condition, StudyConfig};

fn main() {
    let config = StudyConfig {
        participants: 9,
        beaver_queries: 6,
        bird_queries: 6,
        seed: 42,
        model: ModelKind::Gpt4o,
    };
    println!(
        "Running a reduced study: {} participants x {} queries...",
        config.participants,
        config.total_queries()
    );
    let run = run_study(&config);

    println!("\nAnnotation accuracy (%):");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "Dataset", "BenchPress", "VanillaLLM", "Manual"
    );
    for row in run.accuracy_table() {
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1}",
            row.label, row.benchpress, row.vanilla_llm, row.manual
        );
    }

    println!("\nAnnotation latency (minutes per participant):");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "Dataset", "BenchPress", "VanillaLLM", "Manual"
    );
    for row in run.latency_table() {
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1}",
            row.label, row.benchpress, row.vanilla_llm, row.manual
        );
    }

    println!("\nBacktranslation clarity (mean level 1-5 by condition):");
    let histograms = run.clarity_histograms(ModelKind::Gpt4o);
    for condition in Condition::all() {
        let histogram = histograms.get(condition).cloned().unwrap_or_default();
        println!("  {:<12} {:.2}", condition.name(), histogram.mean_level());
    }
}
