//! Property tests for the SQL `LIKE` matcher.
//!
//! The matcher (`bp_storage::like_match`) was rewritten from a recursive
//! byte-wise backtracker — exponential on `%a%a%a…` patterns and wrong for
//! `_` over multi-byte UTF-8 — to an iterative two-pointer scan with a
//! single `%` backtrack point. This suite pits the new matcher against a
//! reimplementation of the old recursive algorithm as an **oracle on ASCII
//! inputs** (where the byte-wise semantics were correct), bounded small
//! enough that the oracle's exponential worst case stays harmless, plus
//! targeted UTF-8 and engine-level regressions. All three engines (legacy
//! interpreter, row-planned, columnar) call the same `like_match`, so one
//! oracle covers the whole system; the engine-level check below confirms
//! the sharing end to end.

use benchpress_suite::storage::like_match;
use benchpress_suite::storage::{Database, ExecStrategy};
use proptest::prelude::*;

/// The pre-rewrite matcher, verbatim in structure: recursive, byte-wise,
/// exponential backtracking on `%`. Correct on ASCII; kept here only as a
/// differential oracle.
fn recursive_like_oracle(text: &str, pattern: &str) -> bool {
    fn helper(t: &[u8], p: &[u8]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            b'%' => (0..=t.len()).any(|skip| helper(&t[skip..], &p[1..])),
            b'_' => !t.is_empty() && helper(&t[1..], &p[1..]),
            c => !t.is_empty() && t[0] == c && helper(&t[1..], &p[1..]),
        }
    }
    helper(text.as_bytes(), pattern.as_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 512,
        ..ProptestConfig::default()
    })]

    /// On ASCII inputs the iterative matcher agrees with the old recursive
    /// oracle on every (text, pattern) pair — including patterns that are
    /// all wildcards. Sizes are bounded so the oracle's exponential case
    /// (many `%`s over a matching-ish text) stays fast.
    #[test]
    fn iterative_matcher_agrees_with_recursive_oracle(
        text in "[ab]{0,10}",
        pattern in "[ab%_]{0,8}",
    ) {
        prop_assert_eq!(
            like_match(&text, &pattern),
            recursive_like_oracle(&text, &pattern),
            "divergence on text={:?} pattern={:?}", text, pattern
        );
    }

    /// Same agreement over a wider ASCII alphabet with sparser wildcards
    /// (the oracle is cheap when `%` is rare).
    #[test]
    fn matcher_agrees_on_wider_alphabet(
        text in "[a-e ]{0,16}",
        pattern in "([a-e ]|%|_){0,10}",
    ) {
        prop_assert_eq!(
            like_match(&text, &pattern),
            recursive_like_oracle(&text, &pattern),
            "divergence on text={:?} pattern={:?}", text, pattern
        );
    }

    /// `%`-only patterns match everything; `_`-only patterns match exactly
    /// by character count (not byte count).
    #[test]
    fn wildcard_identities(text in ".{0,12}") {
        prop_assert!(like_match(&text, "%"));
        prop_assert!(like_match(&text, "%%"));
        let underscores = "_".repeat(text.chars().count());
        prop_assert!(like_match(&text, &underscores));
        prop_assert_eq!(like_match(&text, &format!("{underscores}_")), false);
        // Every text matches itself when it contains no wildcard bytes.
        if !text.contains(['%', '_']) {
            prop_assert!(like_match(&text, &text));
        }
    }

    /// Prefix/suffix/containment forms derived from the text itself always
    /// match, on arbitrary Unicode (char-boundary safe).
    #[test]
    fn derived_patterns_match(text in "[a-zé魚α ]{1,10}") {
        let n = text.chars().count();
        let prefix: String = text.chars().take(n / 2).collect();
        let suffix: String = text.chars().skip(n / 2).collect();
        if !prefix.contains(['%', '_']) {
            prop_assert!(like_match(&text, &format!("{prefix}%")));
        }
        if !suffix.contains(['%', '_']) {
            prop_assert!(like_match(&text, &format!("%{suffix}")));
            prop_assert!(like_match(&text, &format!("{prefix}%{suffix}")));
        }
    }
}

/// The byte-wise matcher treated `_` as "one byte": multi-byte characters
/// made patterns mis-align. The char-wise matcher must not.
#[test]
fn utf8_regressions() {
    assert!(like_match("é", "_"));
    assert!(!like_match("é", "__"));
    assert!(like_match("αβγ", "___"));
    assert!(!like_match("αβγ", "__"));
    assert!(like_match("魚と米", "魚_米"));
    assert!(like_match("naïve", "na_ve"));
    assert!(like_match("naïve", "%ïve"));
    assert!(!like_match("naïve", "na__ve"));
}

/// Pathological patterns complete (quickly) instead of blowing the stack
/// or the clock — the workspace-level companion to the timeboxed watchdog
/// in `bp-storage`'s unit tests.
#[test]
fn pathological_patterns_terminate() {
    let text = "a".repeat(2_000);
    assert!(!like_match(&text, &format!("{}b", "%a".repeat(30))));
    assert!(like_match(&text, &format!("{}%", "%a".repeat(30))));
    assert!(like_match(&text, &"%".repeat(500)));
}

/// All three engines share the fixed matcher: a LIKE predicate over text
/// with multi-byte characters grades identically under the legacy
/// interpreter, the row-planned engine and the columnar kernel.
#[test]
fn engines_share_the_fixed_matcher() {
    let mut db = Database::new("likes");
    db.ingest_ddl("CREATE TABLE names (id INT PRIMARY KEY, name VARCHAR(30));")
        .unwrap();
    db.insert_into(
        "names",
        vec![
            vec![1.into(), "café".into()],
            vec![2.into(), "cafe".into()],
            vec![3.into(), "魚と米".into()],
            vec![4.into(), "caff".into()],
        ],
    )
    .unwrap();
    for (sql, expected_rows) in [
        ("SELECT id FROM names WHERE name LIKE 'caf_' ORDER BY id", 3),
        (
            "SELECT id FROM names WHERE name LIKE 'caf__' ORDER BY id",
            0,
        ),
        ("SELECT id FROM names WHERE name LIKE '魚_米'", 1),
        ("SELECT id FROM names WHERE name LIKE '%é'", 1),
    ] {
        let legacy = db.execute_sql_with(sql, ExecStrategy::Legacy).unwrap();
        let row = db.execute_sql_with(sql, ExecStrategy::RowPlanned).unwrap();
        let columnar = db.execute_sql_with(sql, ExecStrategy::Planned).unwrap();
        assert_eq!(legacy, row, "legacy vs row-planned diverge on {sql}");
        assert_eq!(legacy, columnar, "legacy vs columnar diverge on {sql}");
        assert_eq!(
            legacy.row_count(),
            expected_rows,
            "wrong match set for {sql}"
        );
    }
}
