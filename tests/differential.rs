//! Differential test suite for the planned query engine.
//!
//! Every query of a generated workload — across all four benchmark corpora
//! (Spider, Bird, Fiben, Beaver) — is executed **three ways**:
//! `ExecStrategy::Planned` (the columnar batch engine, the default),
//! `ExecStrategy::RowPlanned` (the row-at-a-time planned engine, the
//! representation oracle), and `ExecStrategy::Legacy` (the tree-walking
//! interpreter, the planning oracle). Successful results must be
//! *identical* across all three: same columns, same rows in the same order,
//! same ordered flag — or every engine must fail.
//!
//! Both planned engines run at thread budgets 1 **and** 4 (parallel
//! operators run even on single-core CI; determinism makes extra workers
//! harmless), and each engine must be byte-identical to itself across
//! thread counts — including on error paths. Seed-driven generators target
//! what the corpus generator never emits: NULL-heavy boolean predicates
//! (three-valued logic), large-magnitude integers (±2^53 neighborhood,
//! `i64::MIN`/`MAX`), text containing the historical `"\u{1}"` key
//! separator, and ORDER BY/LIMIT/OFFSET/DISTINCT combinations that exercise
//! the fused Top-K and the dedup paths.

use benchpress_suite::datasets::{BenchmarkKind, CorpusScale, GeneratedBenchmark};
use benchpress_suite::sql::DataType;
use benchpress_suite::storage::{Column, Database, ExecOptions, ExecStrategy, TableSchema, Value};
use proptest::prelude::*;

/// Parallel thread budget for the planned engines in this suite.
const TEST_THREADS: usize = 4;

/// Execute with the columnar engine, the row-planned engine (each at
/// threads 1 and 4) and the legacy interpreter. Successful results must be
/// byte-identical across all engines and thread counts; when a query
/// errors, every engine must error, and each planned engine's error must be
/// identical across thread counts.
fn assert_engines_agree(db: &Database, sql: &str, label: &str) {
    let legacy = db.execute_sql_with(sql, ExecStrategy::Legacy);
    let columnar = db.execute_sql_opts(
        sql,
        ExecOptions::new(ExecStrategy::Planned).with_threads(TEST_THREADS),
    );
    let row = db.execute_sql_opts(
        sql,
        ExecOptions::new(ExecStrategy::RowPlanned).with_threads(TEST_THREADS),
    );
    match (&legacy, &columnar, &row) {
        (Ok(l), Ok(c), Ok(r)) => {
            assert_eq!(c, r, "columnar vs row-planned disagree on {label}: {sql}");
            assert_eq!(l, c, "legacy vs columnar disagree on {label}: {sql}");
        }
        (Err(_), Err(_), Err(_)) => {}
        (l, c, r) => panic!(
            "ok/err divergence on {label} query {sql}: legacy={l:?} columnar={c:?} row={r:?}"
        ),
    }
    // Thread-count determinism per engine, including error identity.
    let columnar_serial = db.execute_sql_opts(sql, ExecOptions::serial());
    assert_eq!(
        columnar_serial, columnar,
        "parallel columnar diverges from serial columnar on {label}: {sql}"
    );
    let row_serial = db.execute_sql_opts(
        sql,
        ExecOptions::new(ExecStrategy::RowPlanned).with_threads(1),
    );
    assert_eq!(
        row_serial, row,
        "parallel row-planned diverges from serial row-planned on {label}: {sql}"
    );
}

fn assert_corpus_differential(kind: BenchmarkKind, query_count: usize, seed: u64) {
    let corpus = GeneratedBenchmark::generate(kind, query_count, seed);
    for entry in &corpus.log {
        assert_engines_agree(&corpus.database, &entry.sql, kind.name());
    }
}

/// Every plan the compiler emits for a corpus — at both fast-path settings
/// — must pass the static verifier with zero violations. Compile failures
/// are skipped (deferred plan errors are legal); compiled plans must be
/// sound.
fn assert_corpus_verifies(kind: BenchmarkKind, query_count: usize, seed: u64) {
    use benchpress_suite::storage::{compile_query_with, verify_plan};
    let corpus = GeneratedBenchmark::generate(kind, query_count, seed);
    let snapshot = corpus.database.snapshot();
    for entry in &corpus.log {
        let Ok(query) = benchpress_suite::sql::parse_query(&entry.sql) else {
            continue;
        };
        for fast_paths in [true, false] {
            if let Ok(plan) = compile_query_with(&snapshot, &query, fast_paths) {
                let violations = verify_plan(&snapshot, &plan);
                assert!(
                    violations.is_empty(),
                    "{} (fast_paths={fast_paths}): {}\n{}",
                    kind.name(),
                    entry.sql,
                    violations
                        .iter()
                        .map(|v| format!("  - {v}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Spider-like workloads (simple lookups + light aggregation).
    #[test]
    fn planned_matches_interpreter_on_spider(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Spider, 10, seed);
    }

    /// Bird-like workloads (wider schemas, more aggregation).
    #[test]
    fn planned_matches_interpreter_on_bird(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Bird, 10, seed);
    }

    /// Fiben-like workloads (deep joins and nesting).
    #[test]
    fn planned_matches_interpreter_on_fiben(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Fiben, 8, seed);
    }

    /// Beaver-like workloads (enterprise: CTEs, deep joins, domain filters,
    /// NULL-heavy data).
    #[test]
    fn planned_matches_interpreter_on_beaver(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Beaver, 8, seed);
    }

    /// Static-verification property: every plan compiled from all four
    /// corpora passes `verify_plan` with zero violations, with index fast
    /// paths both on and off. (In debug builds the compile hook asserts
    /// this a second time from inside `compile_query_with`.)
    #[test]
    fn corpus_plans_verify_cleanly(seed in 0u64..10_000) {
        for kind in [
            BenchmarkKind::Spider,
            BenchmarkKind::Bird,
            BenchmarkKind::Fiben,
            BenchmarkKind::Beaver,
        ] {
            assert_corpus_verifies(kind, 8, seed);
        }
    }
}

/// One scaled corpus run: the hash-join and multi-batch columnar paths
/// (exercised for real at Medium scale, with inputs large enough to split
/// into multiple batches/morsels) must agree with the oracles row-for-row.
#[test]
fn planned_matches_interpreter_on_scaled_corpus() {
    let corpus = GeneratedBenchmark::generate_scaled(
        BenchmarkKind::Spider,
        6,
        20_260_730,
        CorpusScale::Medium,
    );
    for entry in &corpus.log {
        assert_engines_agree(&corpus.database, &entry.sql, "scaled-corpus");
    }
}

// ---------------------------------------------------------------------
// Scalar-kernel corner corpus: three-valued logic, exact integers,
// separator-bearing text
// ---------------------------------------------------------------------

/// SplitMix64: expands one proptest-supplied seed into a deterministic
/// stream for the predicate/query generators below.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        &options[self.below(options.len())]
    }
}

/// Large-magnitude integers around the f64-exactness cliff plus the i64
/// extremes; every value here collided (or truncated) on the old
/// f64-routed key/arithmetic paths.
const EDGE_INTS: [i64; 10] = [
    i64::MIN,
    i64::MIN + 1,
    -(1 << 53) - 1,
    -(1 << 53),
    0,
    1,
    (1 << 53) - 1,
    1 << 53,
    (1 << 53) + 1,
    i64::MAX,
];

/// Text values around the historical `"\u{1}"` composite-key separator.
const EDGE_TEXT: [&str; 8] = [
    "a",
    "b",
    "a\u{1}b",
    "a\u{1}",
    "\u{1}b",
    "",
    "\u{1}",
    "a\u{1}b\u{1}c",
];

/// A two-table database stocked with NULL-heavy booleans, ±2^53-boundary
/// integers, i64 extremes, and separator-bearing text. The proptest suites
/// use the small size (fast inline execution, many seeds); the scaled test
/// below uses a size past the morsel threshold so the same corner data
/// also flows through the multi-morsel parallel operators.
fn edge_db() -> Database {
    edge_db_sized(48)
}

fn edge_db_sized(rows_per_table: i64) -> Database {
    let mut db = Database::new("edge");
    for table in ["EDGE_A", "EDGE_B"] {
        db.create_table(TableSchema::new(
            table,
            vec![
                Column::new("ID", DataType::Integer).primary_key(),
                Column::new("BIG", DataType::Integer),
                Column::new("FRAC", DataType::Float),
                Column::new("FLAG", DataType::Boolean),
                Column::new("TXT", DataType::Text),
                Column::new("GRP", DataType::Text),
            ],
        ))
        .expect("edge schema");
    }
    for (t, table) in ["EDGE_A", "EDGE_B"].iter().enumerate() {
        let mut mix = Mix(0xed6e ^ ((t as u64) << 32));
        let rows: Vec<Vec<Value>> = (0..rows_per_table)
            .map(|i| {
                let big = if mix.below(4) == 0 {
                    Value::Null
                } else {
                    Value::Int(*mix.pick(&EDGE_INTS))
                };
                let frac = match mix.below(6) {
                    0 => Value::Null,
                    1 => Value::Float((1i64 << 53) as f64),
                    // 2^63: the f64 that i64::MAX rounds to — comparison
                    // and hash keys must agree it equals no i64.
                    2 => Value::Float(9_223_372_036_854_775_808.0),
                    3 => Value::Float(-0.0),
                    4 => Value::Float(0.5),
                    _ => Value::Float(mix.below(10) as f64),
                };
                let flag = match mix.below(3) {
                    0 => Value::Null,
                    1 => Value::Bool(true),
                    _ => Value::Bool(false),
                };
                vec![
                    Value::Int(i),
                    big,
                    frac,
                    flag,
                    Value::Text(mix.pick(&EDGE_TEXT).to_string()),
                    Value::Text(format!("g{}", mix.below(3))),
                ]
            })
            .collect();
        db.insert_into(table, rows).expect("edge rows");
    }
    db
}

/// The corner corpus plus NaN-poisoned float rows: NaN breaks the
/// coincidence between the secondary indexes' `total_cmp`/`group_key`
/// structure and per-row SQL semantics, so every index fast path must
/// detect it and fall back to the exact scan kernels. Data-level only —
/// no SQL literal spells NaN, which is exactly why the generators cannot
/// reach this state without help.
fn edge_db_with_nan() -> Database {
    let mut db = edge_db();
    for table in ["EDGE_A", "EDGE_B"] {
        let rows: Vec<Vec<Value>> = (0..6i64)
            .map(|i| {
                vec![
                    Value::Int(1000 + i),
                    Value::Int(i % 3),
                    if i % 2 == 0 {
                        Value::Float(f64::NAN)
                    } else {
                        Value::Float(0.5)
                    },
                    Value::Bool(true),
                    Value::Text("n".to_string()),
                    Value::Text(format!("g{}", i % 3)),
                ]
            })
            .collect();
        db.insert_into(table, rows).expect("nan rows");
    }
    db
}

/// Render one sargable conjunct — the shapes the compiler lowers onto a
/// secondary index: point equality (int/float/text, including a float
/// literal probing an int column), one-sided ranges, BETWEEN, IN-lists.
fn gen_sargable(mix: &mut Mix) -> String {
    let int_lits = ["0", "1", "3", "9007199254740993", "-1"];
    match mix.below(10) {
        0 => format!("ID = {}", mix.below(64)),
        1 => format!("BIG = {}", mix.pick(&int_lits)),
        2 => format!("TXT = '{}'", mix.pick(&["a", "b", "a\u{1}b", ""])),
        3 => format!("FRAC {} 0.5", mix.pick(&["<", "<=", ">", ">=", "="])),
        4 => format!(
            "BIG {} {}",
            mix.pick(&["<", "<=", ">", ">="]),
            mix.pick(&int_lits)
        ),
        5 => format!("ID BETWEEN {} AND {}", mix.below(40), mix.below(80)),
        6 => format!(
            "BIG IN ({}, {}, 9007199254740992)",
            mix.pick(&int_lits),
            mix.pick(&int_lits)
        ),
        7 => format!("TXT IN ('a', '\u{1}', '{}')", mix.pick(&["b", "a\u{1}b"])),
        8 => format!("GRP = 'g{}'", mix.below(4)),
        // A float-literal point probe on an integer column: `3.0` must hit
        // the same rows as `3`, and `0.5` none.
        _ => format!("BIG = {}", mix.pick(&["3.0", "0.5", "-0.0"])),
    }
}

/// Render a random boolean predicate tree: NULL-heavy comparison leaves
/// (every third row has a NULL somewhere) composed with AND/OR/NOT — the
/// shapes where eager two-valued logic diverges from SQL's three-valued
/// logic.
fn gen_predicate(mix: &mut Mix, depth: usize) -> String {
    if depth == 0 || mix.below(3) == 0 {
        let literal_ints = [
            "0",
            "1",
            "9007199254740992",
            "9007199254740993",
            "-9007199254740993",
        ];
        return match mix.below(8) {
            0 => "FLAG".to_string(),
            1 => format!(
                "BIG {} {}",
                mix.pick(&["=", "<>", "<", ">", "<=", ">="]),
                mix.pick(&literal_ints)
            ),
            2 => format!("FRAC {} 0.5", mix.pick(&["=", "<", ">"])),
            3 => format!("TXT = '{}'", mix.pick(&["a", "b", "a\u{1}b"])),
            4 => format!("BIG IS {}NULL", mix.pick(&["", "NOT "])),
            5 => format!("FLAG IS {}NULL", mix.pick(&["", "NOT "])),
            6 => "BIG = FRAC".to_string(),
            _ => format!(
                "BIG BETWEEN {} AND 9007199254740993",
                mix.pick(&["-9007199254740993", "0"])
            ),
        };
    }
    match mix.below(4) {
        0 => format!(
            "({} AND {})",
            gen_predicate(mix, depth - 1),
            gen_predicate(mix, depth - 1)
        ),
        1 => format!(
            "({} OR {})",
            gen_predicate(mix, depth - 1),
            gen_predicate(mix, depth - 1)
        ),
        2 => format!("(NOT {})", gen_predicate(mix, depth - 1)),
        _ => format!(
            "({} OR ({} AND {}))",
            gen_predicate(mix, depth - 1),
            gen_predicate(mix, depth - 1),
            gen_predicate(mix, depth - 1)
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// NULL-heavy boolean predicates: projected (so TRUE/FALSE/NULL all
    /// become visible output) and used as WHERE filters.
    #[test]
    fn three_valued_predicates_agree(seed in 0u64..1_000_000) {
        let db = edge_db();
        let mut mix = Mix(seed);
        for _ in 0..6 {
            let pred = gen_predicate(&mut mix, 3);
            assert_engines_agree(
                &db,
                &format!("SELECT ID, ({pred}) FROM EDGE_A ORDER BY ID"),
                "3vl-projection",
            );
            assert_engines_agree(
                &db,
                &format!("SELECT ID FROM EDGE_A WHERE {pred} ORDER BY ID"),
                "3vl-filter",
            );
        }
    }

    /// Large-magnitude integer keys and separator-bearing text through
    /// grouping, DISTINCT, joins and set operations.
    #[test]
    fn exact_keys_and_separator_text_agree(seed in 0u64..1_000_000) {
        let db = edge_db();
        let mut mix = Mix(seed ^ 0x5eed);
        let queries = [
            "SELECT GRP, TXT, COUNT(*) FROM EDGE_A GROUP BY GRP, TXT ORDER BY GRP, TXT".to_string(),
            "SELECT BIG, COUNT(*) FROM EDGE_A GROUP BY BIG ORDER BY BIG".to_string(),
            "SELECT DISTINCT TXT, GRP FROM EDGE_A ORDER BY TXT, GRP".to_string(),
            "SELECT DISTINCT BIG FROM EDGE_A ORDER BY BIG".to_string(),
            "SELECT a.ID, b.ID FROM EDGE_A a JOIN EDGE_B b ON a.TXT = b.TXT ORDER BY a.ID, b.ID".to_string(),
            "SELECT a.ID, b.ID FROM EDGE_A a JOIN EDGE_B b ON a.BIG = b.BIG ORDER BY a.ID, b.ID".to_string(),
            // Cross-type Int↔Float join keys across the 2^53 and 2^63
            // boundaries: the interpreter's comparison equality and the
            // hash join's key equality must coincide.
            "SELECT a.ID, b.ID FROM EDGE_A a JOIN EDGE_B b ON a.BIG = b.FRAC ORDER BY a.ID, b.ID".to_string(),
            "SELECT a.ID, b.ID FROM EDGE_A a LEFT JOIN EDGE_B b ON a.TXT = b.TXT AND a.GRP = b.GRP ORDER BY a.ID, b.ID".to_string(),
            "SELECT TXT FROM EDGE_A UNION SELECT TXT FROM EDGE_B ORDER BY TXT".to_string(),
            "SELECT TXT, GRP FROM EDGE_A INTERSECT SELECT TXT, GRP FROM EDGE_B".to_string(),
            "SELECT BIG FROM EDGE_A EXCEPT SELECT BIG FROM EDGE_B".to_string(),
            "SELECT MIN(BIG), MAX(BIG), COUNT(DISTINCT BIG) FROM EDGE_A".to_string(),
            format!(
                "SELECT ID FROM EDGE_A WHERE BIG IN (SELECT BIG FROM EDGE_B WHERE {}) ORDER BY ID",
                gen_predicate(&mut mix, 2)
            ),
            // Arithmetic on extreme integers: overflow must be an error in
            // both engines, never a silently rounded f64 answer.
            "SELECT ID, BIG + 1 FROM EDGE_A ORDER BY ID".to_string(),
            "SELECT ID, -BIG FROM EDGE_A ORDER BY ID".to_string(),
            "SELECT ID, BIG * 2 FROM EDGE_A ORDER BY ID".to_string(),
            "SELECT SUM(BIG) FROM EDGE_A WHERE BIG > 0".to_string(),
        ];
        for sql in &queries {
            assert_engines_agree(&db, sql, "exact-keys");
        }
    }

    /// Sargable predicate shapes the compiler lowers onto secondary
    /// indexes — point equality, one-sided ranges, BETWEEN, IN-lists, IN
    /// (subquery), index-served aggregates, and ordered-index Top-K
    /// prefixes — with and without residual conjuncts. The legacy
    /// interpreter never uses an index, so three-way agreement *is* the
    /// indexed ≡ scanned proof; the NaN-poisoned corpus additionally
    /// forces every fast path through its exact-fallback branch.
    #[test]
    fn indexed_access_paths_agree(seed in 0u64..1_000_000) {
        for (db, tag) in [(edge_db(), "indexed"), (edge_db_with_nan(), "indexed-nan")] {
            let mut mix = Mix(seed ^ 0x1dc5);
            for _ in 0..4 {
                let sarg = gen_sargable(&mut mix);
                // Bare sargable filter, with projection pruning in play.
                assert_engines_agree(
                    &db,
                    &format!("SELECT ID, TXT FROM EDGE_A WHERE {sarg} ORDER BY ID"),
                    tag,
                );
                // Sargable conjunct + benign residual above the index scan.
                assert_engines_agree(
                    &db,
                    &format!(
                        "SELECT ID FROM EDGE_A WHERE {sarg} AND {} ORDER BY ID",
                        gen_predicate(&mut mix, 1)
                    ),
                    tag,
                );
            }
            // Ordered-index Top-K prefixes: NULLs sort first, duplicate keys
            // keep row order, OFFSET skips before LIMIT takes.
            let k = mix.below(20);
            let off = mix.below(6);
            assert_engines_agree(
                &db,
                &format!("SELECT BIG FROM EDGE_A ORDER BY BIG LIMIT {k}"),
                tag,
            );
            if tag == "indexed" {
                // ORDER BY over a NaN-bearing column is a pre-existing
                // engine panic (non-total sort comparator) in *every*
                // engine's full-sort path, so the NaN corpus only orders
                // by the NaN-free columns above.
                assert_engines_agree(
                    &db,
                    &format!("SELECT FRAC, ID FROM EDGE_A ORDER BY FRAC LIMIT {k} OFFSET {off}"),
                    tag,
                );
            }
            // Index-served aggregates (MAX(FRAC) falls back under NaN).
            assert_engines_agree(
                &db,
                "SELECT MIN(BIG), MAX(FRAC), COUNT(*), COUNT(BIG), COUNT(DISTINCT TXT) FROM EDGE_A",
                tag,
            );
            // IN (uncorrelated subquery) as a hash-index probe.
            assert_engines_agree(
                &db,
                &format!(
                    "SELECT ID FROM EDGE_A WHERE BIG IN (SELECT BIG FROM EDGE_B WHERE {}) ORDER BY ID",
                    gen_sargable(&mut mix)
                ),
                tag,
            );
        }
    }

    /// ORDER BY / LIMIT / OFFSET / DISTINCT combinations: the fused Top-K
    /// operator (bounded heap) must be byte-identical to the oracles' full
    /// sort + truncate, including stability on duplicate keys, and DISTINCT
    /// must dedup identically across all three engines.
    #[test]
    fn order_by_limit_distinct_agree(seed in 0u64..1_000_000) {
        let db = edge_db();
        let mut mix = Mix(seed ^ 0x70b1);
        let key_pool = ["GRP", "TXT", "BIG", "FRAC", "ID", "FLAG"];
        for _ in 0..8 {
            // 1-3 sort keys with random directions; GRP/TXT/FLAG are
            // duplicate-heavy, so stability is observable under LIMIT.
            let key_count = 1 + mix.below(3);
            let keys: Vec<String> = (0..key_count)
                .map(|_| format!("{} {}", mix.pick(&key_pool), mix.pick(&["ASC", "DESC"])))
                .collect();
            let distinct = if mix.below(3) == 0 { "DISTINCT " } else { "" };
            let limit = match mix.below(4) {
                0 => String::new(),
                1 => format!(" LIMIT {}", mix.below(60)),
                2 => format!(" LIMIT {} OFFSET {}", mix.below(20), mix.below(20)),
                _ => format!(" LIMIT {}", 1 + mix.below(5)),
            };
            let sql = format!(
                "SELECT {distinct}GRP, TXT, BIG FROM EDGE_A ORDER BY {}{limit}",
                keys.join(", ")
            );
            assert_engines_agree(&db, &sql, "order-limit-distinct");
            // Top-K below an aggregation, and LIMIT over a set operation.
            let agg = format!(
                "SELECT GRP, COUNT(*) AS N FROM EDGE_A GROUP BY GRP ORDER BY N {}, GRP{limit}",
                mix.pick(&["ASC", "DESC"])
            );
            assert_engines_agree(&db, &agg, "order-limit-agg");
        }
        assert_engines_agree(
            &db,
            "SELECT TXT FROM EDGE_A UNION ALL SELECT TXT FROM EDGE_B ORDER BY TXT LIMIT 7 OFFSET 3",
            "order-limit-setop",
        );
    }
}

/// The corner-case data at a size past the morsel threshold (512 rows), so
/// three-valued predicates, exact integer keys, and separator-bearing text
/// flow through the *multi-morsel* parallel Filter/Project/Join/Aggregate
/// paths — the 48-row proptest corpus above runs inline and never splits.
#[test]
fn corner_corpus_agrees_through_multi_morsel_operators() {
    let db = edge_db_sized(640);
    let mut mix = Mix(0x600d);
    let queries = [
        format!(
            "SELECT ID, ({p}) FROM EDGE_A ORDER BY ID",
            p = gen_predicate(&mut mix, 3)
        ),
        format!(
            "SELECT ID FROM EDGE_A WHERE {} ORDER BY ID",
            gen_predicate(&mut mix, 3)
        ),
        "SELECT GRP, TXT, COUNT(*) FROM EDGE_A GROUP BY GRP, TXT ORDER BY GRP, TXT".to_string(),
        "SELECT DISTINCT BIG FROM EDGE_A ORDER BY BIG".to_string(),
        "SELECT a.ID, b.ID FROM EDGE_A a JOIN EDGE_B b ON a.TXT = b.TXT AND a.GRP = b.GRP ORDER BY a.ID, b.ID".to_string(),
        "SELECT a.ID, b.ID FROM EDGE_A a JOIN EDGE_B b ON a.BIG = b.BIG ORDER BY a.ID, b.ID".to_string(),
        "SELECT TXT, GRP FROM EDGE_A EXCEPT SELECT TXT, GRP FROM EDGE_B".to_string(),
        "SELECT ID, BIG + 1 FROM EDGE_A ORDER BY ID".to_string(),
        "SELECT SUM(BIG) FROM EDGE_A WHERE BIG > 0".to_string(),
        // DISTINCT-heavy micro-asserts: 640 rows collapse to a handful of
        // duplicate-laden key combinations, so the dedup path (columnar
        // column-slice keys vs the row engine's composite-string set) does
        // real work, including separator-bearing text and exact integers.
        "SELECT DISTINCT GRP FROM EDGE_A".to_string(),
        "SELECT DISTINCT TXT, GRP FROM EDGE_A ORDER BY TXT, GRP".to_string(),
        "SELECT DISTINCT BIG, FRAC FROM EDGE_A ORDER BY BIG, FRAC".to_string(),
        "SELECT DISTINCT FLAG, GRP, TXT FROM EDGE_A".to_string(),
        "SELECT COUNT(DISTINCT TXT), COUNT(DISTINCT BIG) FROM EDGE_A".to_string(),
        "SELECT DISTINCT GRP, TXT FROM EDGE_A ORDER BY GRP, TXT LIMIT 5".to_string(),
    ];
    for sql in &queries {
        assert_engines_agree(&db, sql, "scaled-edge");
    }
}

/// Regression: a query error raised inside one morsel of a multi-morsel
/// parallel run must surface as the same clean `Err` serial execution
/// reports — never a panic. The scheduler once checked the shared failure
/// flag *after* claiming a morsel slot, so a worker could abandon a slot
/// that precedes the earliest error and crash result collection; repeated
/// rounds give thread timing a chance to hit any such window.
#[test]
fn parallel_query_errors_match_serial_cleanly() {
    let mut db = Database::new("overflow");
    db.create_table(TableSchema::new(
        "WIDE",
        vec![
            Column::new("ID", DataType::Integer).primary_key(),
            Column::new("BIG", DataType::Integer),
        ],
    ))
    .expect("schema");
    // 4096 rows split into many morsels; the first overflow site sits
    // mid-table so the failing morsel has predecessors still in flight.
    let rows: Vec<Vec<Value>> = (0..4096i64)
        .map(|i| {
            let big = if i >= 1500 && i % 700 == 0 {
                i64::MAX
            } else {
                i
            };
            vec![Value::Int(i), Value::Int(big)]
        })
        .collect();
    db.insert_into("WIDE", rows).expect("rows");
    let sql = "SELECT ID, BIG + 1 FROM WIDE";
    for strategy in [ExecStrategy::Planned, ExecStrategy::RowPlanned] {
        let serial = db
            .execute_sql_opts(sql, ExecOptions::new(strategy).with_threads(1))
            .expect_err("serial planned must report the overflow");
        for round in 0..25 {
            let parallel = db
                .execute_sql_opts(sql, ExecOptions::new(strategy).with_threads(8))
                .expect_err("parallel planned must report the overflow, not panic");
            assert_eq!(
                parallel, serial,
                "round {round}: {strategy:?} error must be deterministic"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Cost-based join reordering: cost-based ≡ syntactic ≡ legacy
// ---------------------------------------------------------------------

/// A database shaped so join order matters: four tables spanning two
/// orders of magnitude in size, chained by shared keys (big → mid on a
/// fan-out key, mid → small, small → tiny), with an extreme-integer column
/// on the big table so generated projections can force identical overflow
/// errors through every compilation.
fn join_order_db() -> Database {
    let mut db = Database::new("reorder");
    db.create_table(TableSchema::new(
        "R_BIG",
        vec![
            Column::new("ID", DataType::Integer).primary_key(),
            Column::new("K", DataType::Integer),
            Column::new("EX", DataType::Integer),
        ],
    ))
    .expect("R_BIG schema");
    db.create_table(TableSchema::new(
        "R_MID",
        vec![
            Column::new("ID", DataType::Integer).primary_key(),
            Column::new("K", DataType::Integer),
            Column::new("J", DataType::Integer),
        ],
    ))
    .expect("R_MID schema");
    db.create_table(TableSchema::new(
        "R_SMALL",
        vec![
            Column::new("J", DataType::Integer).primary_key(),
            Column::new("M", DataType::Integer),
        ],
    ))
    .expect("R_SMALL schema");
    db.create_table(TableSchema::new(
        "R_TINY",
        vec![
            Column::new("M", DataType::Integer).primary_key(),
            Column::new("LBL", DataType::Text),
        ],
    ))
    .expect("R_TINY schema");
    db.insert_into(
        "R_BIG",
        (0..1024i64).map(|i| {
            let ex = if i == 600 { i64::MAX } else { i };
            vec![Value::Int(i), Value::Int(i % 8), Value::Int(ex)]
        }),
    )
    .expect("R_BIG rows");
    db.insert_into(
        "R_MID",
        (0..128i64).map(|i| vec![Value::Int(i), Value::Int(i % 8), Value::Int(i % 32)]),
    )
    .expect("R_MID rows");
    db.insert_into(
        "R_SMALL",
        (0..32i64).map(|i| vec![Value::Int(i), Value::Int(i % 4)]),
    )
    .expect("R_SMALL rows");
    db.insert_into(
        "R_TINY",
        (0..4i64).map(|i| vec![Value::Int(i), Value::Text(format!("m{i}"))]),
    )
    .expect("R_TINY rows");
    db
}

/// The reordered-joins oracle: compile `sql` with the cost-based join
/// reorderer and pinned to syntactic order, and require byte-identical
/// behavior — results *and* errors — at thread counts 1 and 4, plus
/// Ok/Err parity (and result equality on success) with the legacy
/// interpreter, which never reorders anything. The cost-based plan must
/// also pass the static verifier (whose join-binding invariant is
/// association-order-independent). Failure messages print both plans'
/// `explain()` renderings so a divergence immediately shows the shapes
/// that produced it.
fn assert_join_orders_agree(db: &Database, sql: &str) {
    use benchpress_suite::storage::{
        compile_query_opts, exec_compiled, verify_plan, CompileOptions,
    };
    let query = benchpress_suite::sql::parse_query(sql).expect("generated join SQL parses");
    let snapshot = db.snapshot();
    let cost_based = compile_query_opts(&snapshot, &query, CompileOptions::default());
    let syntactic = compile_query_opts(
        &snapshot,
        &query,
        CompileOptions {
            cost_based: false,
            ..CompileOptions::default()
        },
    );
    let (cost_based, syntactic) = match (cost_based, syntactic) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(c), Err(s)) => {
            assert_eq!(
                c, s,
                "compile errors must not depend on the optimizer: {sql}"
            );
            return;
        }
        (c, s) => panic!(
            "optimizer changed compile outcome on {sql}: cost_based_err={:?} syntactic_err={:?}",
            c.err(),
            s.err()
        ),
    };
    let violations = verify_plan(&snapshot, &cost_based);
    assert!(
        violations.is_empty(),
        "reordered plan fails verification on {sql}:\n{}\nplan:\n{}",
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n"),
        cost_based.explain(&snapshot)
    );
    let mut serial_result = None;
    for threads in [1usize, TEST_THREADS] {
        let options = ExecOptions::default().with_threads(threads);
        let from_cost = exec_compiled(&snapshot, &cost_based, options);
        let from_syntactic = exec_compiled(&snapshot, &syntactic, options);
        assert_eq!(
            from_cost,
            from_syntactic,
            "cost-based vs syntactic diverge at {threads} thread(s) on {sql}\n\
             cost-based plan:\n{}\nsyntactic plan:\n{}",
            cost_based.explain(&snapshot),
            syntactic.explain(&snapshot)
        );
        if let Some(serial) = &serial_result {
            assert_eq!(
                serial, &from_cost,
                "thread count changes the reordered plan's outcome on {sql}"
            );
        } else {
            serial_result = Some(from_cost);
        }
    }
    let legacy = db.execute_sql_with(sql, ExecStrategy::Legacy);
    match (legacy, serial_result.expect("both thread counts ran")) {
        (Ok(l), Ok(c)) => assert_eq!(
            l,
            c,
            "legacy vs cost-based diverge on {sql}\ncost-based plan:\n{}",
            cost_based.explain(&snapshot)
        ),
        (Err(_), Err(_)) => {}
        (l, c) => panic!("ok/err divergence on {sql}: legacy={l:?} cost_based={c:?}"),
    }
}

/// Seed-driven multi-join chains over [`join_order_db`]: 3- or 4-table
/// spines written big-table-first (the pathological syntactic order) or
/// tiny-table-first, with optional filters on the tail and an optional
/// overflow-bearing projection that must error identically through every
/// compilation.
fn gen_join_chain(mix: &mut Mix) -> String {
    let reversed = mix.below(2) == 0;
    let four_way = mix.below(2) == 0;
    let overflow = mix.below(4) == 0;
    let select = if overflow {
        "R_BIG.EX + 1"
    } else {
        "R_BIG.ID, R_MID.ID, R_SMALL.M"
    };
    let mut joins = vec![
        ("R_BIG", None),
        ("R_MID", Some("R_BIG.K = R_MID.K")),
        ("R_SMALL", Some("R_MID.J = R_SMALL.J")),
    ];
    if four_way {
        joins.push(("R_TINY", Some("R_SMALL.M = R_TINY.M")));
    }
    if reversed {
        // Same spine written small-table-first: already a good order, so
        // the reorderer should change little — identity must hold anyway.
        // The ON clauses shift one slot because each belongs to the later
        // table of its adjacent pair.
        joins.reverse();
        let conditions: Vec<_> = joins.iter().filter_map(|(_, on)| *on).collect();
        for (entry, condition) in joins.iter_mut().skip(1).zip(conditions) {
            entry.1 = Some(condition);
        }
        joins[0].1 = None;
    }
    let mut sql = format!("SELECT {select} FROM {}", joins[0].0);
    for (name, on) in &joins[1..] {
        sql.push_str(&format!(
            " JOIN {name} ON {}",
            on.expect("joined table has ON")
        ));
    }
    match mix.below(3) {
        0 => sql.push_str(" WHERE R_SMALL.J < 5"),
        1 if four_way => sql.push_str(" WHERE R_TINY.M = 2"),
        _ => {}
    }
    sql
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    /// Reordered joins are invisible: for seed-driven 3- and 4-table
    /// equi-join chains (pathological and benign syntactic orders, tail
    /// filters, overflow projections), the cost-based compilation must be
    /// byte-identical to the syntactic one — serial and parallel, errors
    /// included — and agree with the legacy interpreter.
    #[test]
    fn reordered_joins_are_byte_identical_across_compilations(seed in 0u64..1_000_000) {
        let db = join_order_db();
        let mut mix = Mix(seed ^ 0x0e0e);
        for _ in 0..4 {
            let sql = gen_join_chain(&mut mix);
            assert_join_orders_agree(&db, &sql);
        }
    }
}

/// The generator's pathological shape really is reordered — otherwise the
/// property above would be vacuously comparing a plan against itself.
#[test]
fn pathological_chain_is_cost_based_reordered() {
    use benchpress_suite::storage::{compile_query_opts, CompileOptions};
    let db = join_order_db();
    let snapshot = db.snapshot();
    let sql = "SELECT R_BIG.ID, R_MID.ID, R_SMALL.M FROM R_BIG \
               JOIN R_MID ON R_BIG.K = R_MID.K \
               JOIN R_SMALL ON R_MID.J = R_SMALL.J";
    let query = benchpress_suite::sql::parse_query(sql).expect("parses");
    let plan = compile_query_opts(&snapshot, &query, CompileOptions::default()).expect("compiles");
    assert!(
        plan.optimizer_stats().cost_based >= 1,
        "the big-first chain must be cost-based reordered; plan:\n{}",
        plan.explain(&snapshot)
    );
    assert_join_orders_agree(&db, sql);
}

// ---------------------------------------------------------------------
// Snapshot storage: snapshot reads vs single-borrow reads, and prepared
// queries under a streaming writer
// ---------------------------------------------------------------------

/// Snapshot reads must be byte-identical to reads through the `Database`
/// borrow, for every corpus query, every engine, and every thread count —
/// including error identity. The three-way oracle set applies unchanged to
/// the snapshot path.
#[test]
fn snapshot_reads_match_borrowed_reads_on_every_engine() {
    let corpus = GeneratedBenchmark::generate(BenchmarkKind::Beaver, 8, 20_260_808);
    let db = &corpus.database;
    let snapshot = db.snapshot();
    for entry in &corpus.log {
        // The snapshot path must satisfy the full three-way differential...
        assert_engines_agree(db, &entry.sql, "snapshot-corpus");
        // ...and mirror the borrow path result-for-result.
        for strategy in [
            ExecStrategy::Planned,
            ExecStrategy::RowPlanned,
            ExecStrategy::Legacy,
        ] {
            for threads in [1usize, TEST_THREADS] {
                let options = ExecOptions::new(strategy).with_threads(threads);
                let borrowed = db.execute_sql_opts(&entry.sql, options);
                let snapshotted = snapshot.execute_sql_opts(&entry.sql, options);
                assert_eq!(
                    borrowed, snapshotted,
                    "snapshot diverges from borrow ({strategy:?}, {threads} threads): {}",
                    entry.sql
                );
            }
        }
    }
}

/// Concurrency stress: reader threads executing `PreparedQuery`s while a
/// writer streams inserts. Each reader's whole report must be byte-identical
/// to a serial re-run against its pinned snapshot — the prepared query pins
/// the version it was compiled for, whatever the writer does — at every
/// thread count, and batch errors must surface first-in-input-order.
#[test]
fn prepared_queries_survive_a_streaming_writer() {
    use benchpress_suite::storage::{batch_map, PlanCache};

    let corpus = GeneratedBenchmark::generate(BenchmarkKind::Spider, 8, 20_260_807);
    let db = std::sync::RwLock::new(corpus.database.clone());
    let sqls: Vec<String> = corpus.log.iter().map(|entry| entry.sql.clone()).collect();
    let cache = PlanCache::with_default_capacity();
    // Rows matching the first table of the corpus schema for the writer.
    let victim_table = {
        let guard = db.read().unwrap();
        let table = guard.tables().next().expect("corpus has tables");
        (table.schema.name.clone(), table.schema.clone())
    };
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 0..300i64 {
                let mut guard = db.write().unwrap();
                let row: Vec<Value> = victim_table
                    .1
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(c, column)| match column.data_type {
                        DataType::Integer => Value::Int(1_000_000 + i * 16 + c as i64),
                        DataType::Float => Value::Float(i as f64),
                        _ => Value::Text(format!("w{i}_{c}")),
                    })
                    .collect();
                guard
                    .insert_into(&victim_table.0, vec![row])
                    .expect("writer inserts");
            }
        });
        let readers: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let snapshot = db.read().unwrap().snapshot();
                    for threads in [1usize, 4] {
                        let parallel = batch_map(threads, sqls.len(), |i| {
                            cache
                                .get(&snapshot, &sqls[i])
                                .and_then(|p| p.execute(ExecOptions::serial()))
                        })
                        .expect("corpus queries execute");
                        let serial: Vec<_> = sqls
                            .iter()
                            .map(|sql| {
                                snapshot
                                    .execute_sql_opts(sql, ExecOptions::serial())
                                    .expect("serial run executes")
                            })
                            .collect();
                        assert_eq!(
                            parallel, serial,
                            "prepared batch at {threads} threads diverges from serial snapshot run"
                        );
                    }
                })
            })
            .collect();
        for reader in readers {
            reader.join().expect("reader panics propagate");
        }
        writer.join().expect("writer panics propagate");
    });
    // First-error-in-input-order under writes: index 1 errors before index 3.
    let snapshot = db.read().unwrap().snapshot();
    let batch = [
        sqls[0].clone(),
        "SELECT definitely_missing FROM nowhere".to_string(),
        sqls[1].clone(),
        "SELECT also_missing FROM nowhere".to_string(),
    ];
    for threads in [1usize, 4] {
        let err = batch_map(threads, batch.len(), |i| {
            snapshot.execute_sql_opts(&batch[i], ExecOptions::serial())
        })
        .expect_err("batch contains failing statements");
        assert!(
            err.to_string().contains("NOWHERE") || err.to_string().contains("nowhere"),
            "unexpected first error at {threads} threads: {err}"
        );
    }
}
