//! Differential test suite for the planned query engine.
//!
//! Every query of a generated workload — across all four benchmark corpora
//! (Spider, Bird, Fiben, Beaver) — is executed by both engines:
//! `ExecStrategy::Planned` (logical plan + physical operators, the default)
//! and `ExecStrategy::Legacy` (the tree-walking interpreter retained as the
//! oracle). The results must be *identical*: same columns, same rows in the
//! same order, same ordered flag — or both engines must fail.

use benchpress_suite::datasets::{BenchmarkKind, CorpusScale, GeneratedBenchmark};
use benchpress_suite::storage::ExecStrategy;
use proptest::prelude::*;

fn assert_corpus_differential(kind: BenchmarkKind, query_count: usize, seed: u64) {
    let corpus = GeneratedBenchmark::generate(kind, query_count, seed);
    for entry in &corpus.log {
        let legacy = corpus
            .database
            .execute_sql_with(&entry.sql, ExecStrategy::Legacy);
        let planned = corpus
            .database
            .execute_sql_with(&entry.sql, ExecStrategy::Planned);
        match (legacy, planned) {
            (Ok(l), Ok(p)) => assert_eq!(
                l,
                p,
                "engines disagree on {} query: {}",
                kind.name(),
                entry.sql
            ),
            (Err(_), Err(_)) => {}
            (l, p) => panic!(
                "ok/err divergence on {} query {}: legacy={l:?} planned={p:?}",
                kind.name(),
                entry.sql
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Spider-like workloads (simple lookups + light aggregation).
    #[test]
    fn planned_matches_interpreter_on_spider(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Spider, 10, seed);
    }

    /// Bird-like workloads (wider schemas, more aggregation).
    #[test]
    fn planned_matches_interpreter_on_bird(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Bird, 10, seed);
    }

    /// Fiben-like workloads (deep joins and nesting).
    #[test]
    fn planned_matches_interpreter_on_fiben(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Fiben, 8, seed);
    }

    /// Beaver-like workloads (enterprise: CTEs, deep joins, domain filters,
    /// NULL-heavy data).
    #[test]
    fn planned_matches_interpreter_on_beaver(seed in 0u64..10_000) {
        assert_corpus_differential(BenchmarkKind::Beaver, 8, seed);
    }
}

/// One scaled corpus run: the hash-join path (exercised for real at Medium
/// scale) must agree with the interpreter row-for-row.
#[test]
fn planned_matches_interpreter_on_scaled_corpus() {
    let corpus =
        GeneratedBenchmark::generate_scaled(BenchmarkKind::Spider, 6, 20_260_730, CorpusScale::Medium);
    for entry in &corpus.log {
        let legacy = corpus
            .database
            .execute_sql_with(&entry.sql, ExecStrategy::Legacy)
            .expect("legacy executes generated query");
        let planned = corpus
            .database
            .execute_sql_with(&entry.sql, ExecStrategy::Planned)
            .expect("planned executes generated query");
        assert_eq!(legacy, planned, "engines disagree on: {}", entry.sql);
    }
}
