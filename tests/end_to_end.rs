//! Cross-crate integration tests: the full BenchPress pipeline from corpus
//! generation through annotation, export, and evaluation.

use benchpress_suite::core::{
    backtranslation_study, export_json, import_json, review_metrics, FeedbackAction, Project,
    TaskConfig,
};
use benchpress_suite::datasets::{BenchmarkKind, GeneratedBenchmark};
use benchpress_suite::llm::ModelKind;
use benchpress_suite::metrics::{coverage_sql, ClarityLevel, DEFAULT_ACCURACY_THRESHOLD};

fn curate(kind: BenchmarkKind, queries: usize, seed: u64) -> Project {
    let corpus = GeneratedBenchmark::generate(kind, queries, seed);
    let mut project = Project::new(
        format!("it-{}", kind.name()),
        TaskConfig::default().with_seed(seed),
    );
    project.ingest_benchmark(&corpus);
    for query_id in 0..project.log().len() {
        project.annotate(query_id).expect("annotation runs");
        project
            .apply_feedback(query_id, FeedbackAction::SelectCandidate(0))
            .expect("feedback applies");
        project.finalize(query_id).expect("finalizes");
    }
    project
}

#[test]
fn full_curation_pipeline_produces_exportable_benchmark() {
    let project = curate(BenchmarkKind::Spider, 6, 3);
    assert_eq!(project.finalized_count(), 6);

    let json = export_json(&project).expect("export succeeds");
    let records = import_json(&json).expect("round trips");
    assert_eq!(records.len(), 6);
    for record in &records {
        // Every exported query still parses and executes on the project database.
        let query = benchpress_suite::sql::parse_query(&record.query).expect("exported SQL parses");
        project
            .database()
            .execute(&query)
            .expect("exported SQL executes");
        assert!(!record.question.is_empty());
    }
    // Review metrics exist because the generated corpus carries gold questions.
    let metrics = review_metrics(&project);
    assert_eq!(metrics.compared, 6);
    assert!(metrics.mean_rouge_l > 0.2);
}

#[test]
fn accepted_candidates_describe_their_queries_reasonably() {
    let project = curate(BenchmarkKind::Bird, 6, 9);
    let mut accurate = 0;
    for record in project.records() {
        let report = coverage_sql(&record.sql, &record.description).expect("parses");
        if report.is_accurate(DEFAULT_ACCURACY_THRESHOLD) {
            accurate += 1;
        }
    }
    // On a public-benchmark-style corpus, accepting the first candidate
    // should already clear the accuracy bar most of the time.
    assert!(
        accurate >= 4,
        "expected most accepted candidates to be accurate, got {accurate}/6"
    );
}

#[test]
fn backtranslation_study_grades_every_finalized_annotation() {
    let project = curate(BenchmarkKind::Bird, 5, 21);
    let study = backtranslation_study(&project, ModelKind::Gpt4o);
    assert_eq!(study.results.len(), 5);
    assert_eq!(study.histogram.total(), 5);
    assert!(study.mean_level() >= ClarityLevel::StructurallyIncorrect.as_u8() as f64);
}

#[test]
fn knowledge_feedback_improves_candidate_completeness_on_enterprise_queries() {
    let corpus = GeneratedBenchmark::generate(BenchmarkKind::Beaver, 6, 5);
    let mut cold = Project::new("cold", TaskConfig::default().with_seed(1));
    cold.ingest_benchmark(&corpus);
    let mut warm = Project::new("warm", TaskConfig::default().with_seed(1));
    warm.ingest_benchmark(&corpus);
    // Warm project: inject the whole enterprise lexicon up front (as if a
    // previous session captured it through the feedback loop).
    for term in corpus.lexicon.terms() {
        warm.apply_feedback(
            0,
            FeedbackAction::AddKnowledge {
                topic: term.term.clone(),
                note: term.explanation.clone(),
            },
        )
        .unwrap();
    }
    let mut cold_quality = 0.0;
    let mut warm_quality = 0.0;
    for query_id in 0..corpus.log.len() {
        let cold_draft = cold.annotate(query_id).unwrap();
        let warm_draft = warm.annotate(query_id).unwrap();
        cold_quality += cold_draft
            .units
            .iter()
            .map(|u| u.context_quality)
            .sum::<f64>();
        warm_quality += warm_draft
            .units
            .iter()
            .map(|u| u.context_quality)
            .sum::<f64>();
    }
    assert!(
        warm_quality > cold_quality,
        "injected knowledge should raise prompt context quality: {warm_quality} vs {cold_quality}"
    );
}

#[test]
fn execution_accuracy_gap_between_public_and_enterprise_benchmarks() {
    // The Figure 1 shape, end to end through the generated corpora.
    let spider = GeneratedBenchmark::generate(BenchmarkKind::Spider, 25, 13);
    let beaver = GeneratedBenchmark::generate(BenchmarkKind::Beaver, 25, 13);
    let profile = ModelKind::Gpt4o.profile();
    let spider_report = benchpress_suite::llm::evaluate_execution_accuracy(
        &profile,
        &spider.eval_items(),
        &spider.database,
        7,
    );
    let beaver_report = benchpress_suite::llm::evaluate_execution_accuracy(
        &profile,
        &beaver.eval_items(),
        &beaver.database,
        7,
    );
    assert!(
        spider_report.accuracy_percent() > 55.0,
        "public benchmark accuracy too low: {}",
        spider_report.accuracy_percent()
    );
    assert!(
        beaver_report.accuracy_percent() < 25.0,
        "enterprise accuracy too high: {}",
        beaver_report.accuracy_percent()
    );
    assert!(
        spider_report.accuracy_percent() - beaver_report.accuracy_percent() > 40.0,
        "the enterprise gap should be large"
    );
}

#[test]
fn decomposition_recomposition_round_trip_on_generated_enterprise_queries() {
    let corpus = GeneratedBenchmark::generate(BenchmarkKind::Beaver, 10, 33);
    let mut nested_seen = 0;
    for entry in &corpus.log {
        let query = benchpress_suite::sql::parse_query(&entry.sql).unwrap();
        let decomposition = benchpress_suite::sql::decompose(&query);
        if decomposition.was_decomposed {
            nested_seen += 1;
            // The rewritten query must still parse, and for uncorrelated
            // rewrites it must produce the same result set.
            let rewritten = decomposition.rewritten.to_string();
            let reparsed =
                benchpress_suite::sql::parse_query(&rewritten).expect("rewritten parses");
            let original_result = corpus.database.execute(&query).expect("original executes");
            let rewritten_result = corpus
                .database
                .execute(&reparsed)
                .expect("rewritten executes");
            assert!(
                benchpress_suite::storage::results_match(&original_result, &rewritten_result),
                "decomposition changed the result of: {}",
                entry.sql
            );
        }
    }
    assert!(
        nested_seen >= 2,
        "the enterprise workload should contain nested queries (saw {nested_seen})"
    );
}
