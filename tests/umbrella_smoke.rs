//! Smoke coverage for the umbrella crate's public surface: every re-exported
//! module path resolves to the workspace crate behind it, and the advertised
//! version matches the workspace version.

use benchpress_suite as bp;

#[test]
fn version_matches_workspace_version() {
    // The integration test is compiled against the same package, so the cargo
    // env var is the workspace-inherited version the umbrella advertises.
    assert_eq!(bp::VERSION, env!("CARGO_PKG_VERSION"));
    assert_eq!(bp::VERSION, "0.1.0");
}

#[test]
fn all_reexported_module_paths_resolve() {
    // Touch one load-bearing item through each re-export; failure to resolve
    // any of these paths is a compile error, which is the point of the test.
    let query = bp::sql::parse_query("SELECT COUNT(*) FROM students").unwrap();
    let analysis = bp::sql::analyze(&query);
    assert!(analysis.tables.contains("STUDENTS"));

    let database = bp::storage::Database::new("smoke");
    assert_eq!(database.catalog().tables().count(), 0);

    let embedder = bp::embed::Embedder::new();
    assert!((embedder.similarity("count students", "count students") - 1.0).abs() < 1e-6);

    let profile = bp::llm::ModelKind::Gpt4o.profile();
    assert!(profile.base_fidelity > 0.0);

    let corpus =
        bp::datasets::GeneratedBenchmark::generate(bp::datasets::BenchmarkKind::Spider, 2, 7);
    assert_eq!(corpus.log.len(), 2);

    assert!(bp::metrics::exact_match("a b", "a b"));

    let project = bp::core::Project::new("smoke", bp::core::TaskConfig::default());
    assert_eq!(project.log().len(), 0);

    let config = bp::study::StudyConfig::default();
    assert!(config.participants > 0);
}

#[test]
fn reexports_are_the_same_types_as_the_underlying_crates() {
    // The umbrella must re-export, not wrap: a value built through the bp_*
    // crate must be usable where the umbrella path is expected.
    fn takes_umbrella_kind(kind: bp::datasets::BenchmarkKind) -> bp::datasets::BenchmarkKind {
        kind
    }
    let kind: bp_datasets::BenchmarkKind = bp_datasets::BenchmarkKind::Bird;
    assert_eq!(takes_umbrella_kind(kind), bp::datasets::BenchmarkKind::Bird);
}
