//! Property-based integration tests over the whole workflow: whatever the
//! corpus and seed, the pipeline's invariants hold.

use benchpress_suite::core::{FeedbackAction, Project, TaskConfig};
use benchpress_suite::datasets::{BenchmarkKind, GeneratedBenchmark};
use benchpress_suite::llm::CANDIDATES_PER_QUERY;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = BenchmarkKind> {
    prop_oneof![
        Just(BenchmarkKind::Spider),
        Just(BenchmarkKind::Bird),
        Just(BenchmarkKind::Fiben),
        Just(BenchmarkKind::Beaver),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Generated corpora are internally consistent: every log query parses,
    /// executes, and its gold question is a non-trivial description.
    #[test]
    fn generated_corpora_are_consistent(kind in kind_strategy(), seed in 0u64..1000) {
        let corpus = GeneratedBenchmark::generate(kind, 4, seed);
        prop_assert_eq!(corpus.log.len(), 4);
        for entry in &corpus.log {
            let query = benchpress_suite::sql::parse_query(&entry.sql).unwrap();
            let result = corpus.database.execute(&query);
            prop_assert!(result.is_ok(), "query failed: {} ({:?})", entry.sql, result.err());
            prop_assert!(entry.question.split_whitespace().count() >= 3);
        }
    }

    /// The annotation loop always yields exactly four whole-query candidates,
    /// and finalizing grows the knowledge base monotonically.
    #[test]
    fn annotation_loop_invariants(kind in kind_strategy(), seed in 0u64..1000) {
        let corpus = GeneratedBenchmark::generate(kind, 3, seed);
        let mut project = Project::new("prop", TaskConfig::default().with_seed(seed));
        project.ingest_benchmark(&corpus);
        let mut previous_examples = 0;
        for query_id in 0..project.log().len() {
            let draft = project.annotate(query_id).unwrap();
            prop_assert_eq!(draft.candidates.len(), CANDIDATES_PER_QUERY);
            prop_assert!(!draft.units.is_empty());
            for candidate in &draft.candidates {
                prop_assert!(!candidate.trim().is_empty());
            }
            project.apply_feedback(query_id, FeedbackAction::SelectCandidate(0)).unwrap();
            project.finalize(query_id).unwrap();
            let count = project.knowledge().annotation_count();
            prop_assert_eq!(count, previous_examples + 1);
            previous_examples = count;
        }
        // Export contains exactly the finalized annotations.
        let records = benchpress_suite::core::export_records(&project);
        prop_assert_eq!(records.len(), project.log().len());
    }

    /// Drafting is deterministic: the same project state and seed produce the
    /// same candidates.
    #[test]
    fn drafting_is_deterministic(seed in 0u64..500) {
        let corpus = GeneratedBenchmark::generate(BenchmarkKind::Bird, 2, seed);
        let run = |s| {
            let mut project = Project::new("det", TaskConfig::default().with_seed(s));
            project.ingest_benchmark(&corpus);
            project.annotate(0).unwrap().candidates
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
